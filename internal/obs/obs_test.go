package obs

import (
	"errors"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"contender/internal/sim"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{SpanBegin: "begin", SpanEnd: "end", Point: "point", Kind(9): "kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEmitNilAndPanicIsolation(t *testing.T) {
	Emit(nil, Event{Span: SpanTrainMix}) // must not panic

	p := panicObserver{}
	Emit(p, Event{Span: SpanTrainMix}) // panic swallowed at the boundary

	// Inside a Multi, a panicking observer must not starve its siblings.
	rec := NewRecording()
	m := Multi(p, rec)
	Emit(m, Event{Kind: Point, Span: PointTrainRetry})
	if rec.Len() != 1 {
		t.Fatalf("sibling observer got %d events, want 1", rec.Len())
	}
}

type panicObserver struct{}

func (panicObserver) Event(Event) { panic("observer bug") }

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must collapse to nil")
	}
	rec := NewRecording()
	if got := Multi(nil, rec); got != Observer(rec) {
		t.Fatal("single-observer Multi must return the observer itself")
	}
}

func TestFindMetrics(t *testing.T) {
	if FindMetrics(nil) != nil {
		t.Fatal("nil observer has no metrics")
	}
	m := NewMetrics()
	if FindMetrics(m) != m {
		t.Fatal("direct Metrics not found")
	}
	if FindMetrics(Multi(NewRecording(), m)) != m {
		t.Fatal("Metrics inside a Multi not found")
	}
	if FindMetrics(NewRecording()) != nil {
		t.Fatal("Recording is not Metrics")
	}
}

func TestRecordingCanonicalLog(t *testing.T) {
	rec := NewRecording()
	rec.Event(Event{Kind: SpanBegin, Span: SpanTrainMix, Key: "mix/2/0"})
	rec.Event(Event{
		Kind: SpanEnd, Span: SpanTrainMix, Key: "mix/2/0",
		Attempt: 2, Value: 1.5, Dur: 123 * time.Millisecond, Err: "boom",
	})
	rec.Event(Event{Kind: Point, Span: PointSimStage, Template: 7, MPL: 3, Stream: 1})
	want := "begin train.mix key=mix/2/0\n" +
		"end train.mix key=mix/2/0 attempt=2 value=1.5 err=boom\n" +
		"point sim.stage template=7 mpl=3 stream=1\n"
	if got := rec.CanonicalLog(); got != want {
		t.Errorf("canonical log:\n%q\nwant:\n%q", got, want)
	}
	// Wall-clock durations must NOT appear — they vary run to run.
	if strings.Contains(rec.CanonicalLog(), "123") {
		t.Error("canonical log leaked a wall-clock duration")
	}
	if rec.CountSpan(SpanTrainMix) != 2 || rec.CountSpan(PointSimStage) != 1 {
		t.Error("CountSpan miscounts")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("Reset did not clear the log")
	}
}

func TestRecordingConcurrent(t *testing.T) {
	rec := NewRecording()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Event(Event{Kind: Point, Span: PointTrainRetry})
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", rec.Len())
	}
}

func TestSortEvents(t *testing.T) {
	events := []Event{
		{Span: "b", Key: "x", Kind: SpanEnd},
		{Span: "a", Key: "y", Kind: SpanEnd},
		{Span: "a", Key: "x", Kind: SpanEnd, Attempt: 2},
		{Span: "a", Key: "x", Kind: SpanBegin},
		{Span: "a", Key: "x", Kind: SpanEnd, Attempt: 1},
	}
	SortEvents(events)
	got := make([]string, len(events))
	for i, ev := range events {
		got[i] = ev.Span + "/" + ev.Key + "/" + ev.Kind.String()
	}
	want := []string{"a/x/begin", "a/x/end", "a/x/end", "a/y/end", "b/x/end"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	if events[1].Attempt != 1 || events[2].Attempt != 2 {
		t.Error("equal (span,key,kind) must order by attempt")
	}
}

func TestErrLabel(t *testing.T) {
	if ErrLabel(nil) != "" {
		t.Error("nil error must label empty")
	}
	if ErrLabel(errors.New("x")) != "x" {
		t.Error("error text lost")
	}
}

// --- metrics ---

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 106.5 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	// Cumulative: le=1 catches 0.5 and the exact boundary 1; le=10 adds 5;
	// +Inf catches everything.
	wantCounts := []uint64{2, 3, 4}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le=%g): count %d, want %d", i, b.Le, b.Count, wantCounts[i])
		}
	}
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Errorf("median %g out of range", q)
	}
	if s.Quantile(1) != 10 {
		// All mass above the last finite bound returns the last finite Le.
		t.Errorf("q1 = %g, want 10 (last finite bound)", s.Quantile(1))
	}
}

func TestRegistryVecsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("hits_total", "h", "kind").With("a").Add(3)
	r.CounterVec("hits_total", "h", "kind").With("b").Inc()
	r.Gauge("temp", "t").Set(7)
	r.Histogram("lat", "l", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap.Counter(`hits_total{kind="a"}`) != 3 || snap.Counter(`hits_total{kind="b"}`) != 1 {
		t.Errorf("labeled counters: %+v", snap.Counters)
	}
	if snap.Gauge("temp") != 7 {
		t.Errorf("gauge: %+v", snap.Gauges)
	}
	if snap.Histogram("lat").Count != 1 {
		t.Errorf("histogram: %+v", snap.Histograms)
	}
	if snap.Counter("absent") != 0 || snap.Gauge("absent") != 0 || snap.Histogram("absent").Count != 0 {
		t.Error("absent metrics must read zero")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "x")
	r.Gauge("x", "x")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("contender_spans_total", "Completed spans.", "span").With("train.mix").Add(2)
	r.Histogram("dur_seconds", "Latency.", []float64{0.1, 1}).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP contender_spans_total Completed spans.",
		"# TYPE contender_spans_total counter",
		`contender_spans_total{span="train.mix"} 2`,
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="0.1"} 1`,
		`dur_seconds_bucket{le="+Inf"} 1`,
		"dur_seconds_sum 0.05",
		"dur_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	_ = r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

func TestMetricsObserverFolding(t *testing.T) {
	m := NewMetrics()
	m.Event(Event{Kind: SpanBegin, Span: SpanTrainMix, Key: "mix/2/0"})
	snap := m.Snapshot()
	if snap.Gauge(`contender_inflight_spans{span="train.mix"}`) != 1 {
		t.Error("begin must raise inflight")
	}
	m.Event(Event{Kind: SpanEnd, Span: SpanTrainMix, Key: "mix/2/0", Dur: 10 * time.Millisecond, Err: "boom"})
	// End-only serving span: the inflight gauge must not go negative.
	m.Event(Event{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: time.Microsecond})
	for _, p := range []string{PointTrainRetry, PointTrainQuarantine, PointTrainCheckpoint, PointTrainResume} {
		m.Event(Event{Kind: Point, Span: p})
	}

	snap = m.Snapshot()
	checks := map[string]int64{
		`contender_spans_total{span="train.mix"}`:           1,
		`contender_span_errors_total{span="train.mix"}`:     1,
		`contender_spans_total{span="serve.predict_known"}`: 1,
		`contender_events_total{event="train.retry"}`:       1,
		"contender_retries_total":                           1,
		"contender_quarantines_total":                       1,
		"contender_checkpoint_writes_total":                 1,
		"contender_resumed_total":                           1,
	}
	for key, want := range checks {
		if got := snap.Counter(key); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if snap.Gauge(`contender_inflight_spans{span="train.mix"}`) != 0 {
		t.Error("matched begin/end must return inflight to 0")
	}
	if snap.Gauge(`contender_inflight_spans{span="serve.predict_known"}`) < 0 {
		t.Error("end-only span drove inflight negative")
	}
	if snap.Histogram(`contender_span_duration_seconds{span="train.mix"}`).Count != 1 {
		t.Error("duration histogram missed the span end")
	}
}

// TestServeSpanBucketResolution: serve.* span-duration series get the
// sub-microsecond bounds, so a ~60ns prediction span is resolved into
// the first (100ns) bucket instead of collapsing — as it did under
// DefaultLatencyBuckets, whose lowest bound is 100µs — into one
// uninformative bucket with every other serving span.
func TestServeSpanBucketResolution(t *testing.T) {
	if ServeLatencyBuckets[0] != 1e-7 || DefaultLatencyBuckets[0] != 0.0001 {
		t.Fatalf("bucket bound heads changed: serve %g default %g", ServeLatencyBuckets[0], DefaultLatencyBuckets[0])
	}
	if !sort.Float64sAreSorted(ServeLatencyBuckets) {
		t.Fatalf("ServeLatencyBuckets not ascending: %v", ServeLatencyBuckets)
	}
	m := NewMetrics()
	m.Event(Event{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: 60 * time.Nanosecond})
	m.Event(Event{Kind: SpanEnd, Span: SpanServePredictExplain, Dur: 800 * time.Nanosecond})
	m.Event(Event{Kind: SpanEnd, Span: SpanTrainFit, Dur: 60 * time.Nanosecond})

	snap := m.Snapshot()
	serveHist := snap.Histogram(`contender_span_duration_seconds{span="serve.predict_known"}`)
	if len(serveHist.Buckets) != len(ServeLatencyBuckets)+1 {
		t.Fatalf("serve.* series has %d buckets, want %d", len(serveHist.Buckets), len(ServeLatencyBuckets)+1)
	}
	// 60ns ≤ 100ns: the very first bucket must already hold the sample.
	if b := serveHist.Buckets[0]; b.Le != 1e-7 || b.Count != 1 {
		t.Errorf("60ns span: first bucket le=%g count=%d, want le=1e-07 count=1", b.Le, b.Count)
	}
	explainHist := snap.Histogram(`contender_span_duration_seconds{span="serve.predict_explain"}`)
	if b := explainHist.Buckets[0]; b.Count != 0 {
		t.Errorf("800ns span leaked into the 100ns bucket")
	}
	if b := explainHist.Buckets[3]; b.Le != 1e-6 || b.Count != 1 {
		t.Errorf("800ns span: bucket le=%g count=%d, want le=1e-06 count=1", b.Le, b.Count)
	}
	// Non-serve spans keep the default bounds: the 60ns training span
	// lands in the first default (100µs) bucket of a 20-bucket series.
	trainHist := snap.Histogram(`contender_span_duration_seconds{span="train.fit"}`)
	if len(trainHist.Buckets) != len(DefaultLatencyBuckets)+1 {
		t.Fatalf("train.* series has %d buckets, want %d", len(trainHist.Buckets), len(DefaultLatencyBuckets)+1)
	}
	if b := trainHist.Buckets[0]; b.Le != 0.0001 || b.Count != 1 {
		t.Errorf("train span: first bucket le=%g count=%d, want le=0.0001 count=1", b.Le, b.Count)
	}
	// The heterogeneous family must still render in both expositions.
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`contender_span_duration_seconds_bucket{span="serve.predict_known",le="1e-07"} 1`,
		`contender_span_duration_seconds_bucket{span="train.fit",le="0.0001"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsServeHTTPHeader(t *testing.T) {
	m := NewMetrics()
	m.Event(Event{Kind: SpanEnd, Span: SpanTrainFit, Dur: time.Millisecond})
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "contender_spans_total") {
		t.Error("HTTP body missing metrics")
	}
}

// --- slow log ---

func TestSlowLogThreshold(t *testing.T) {
	var b strings.Builder
	sl := NewSlowLog(&b, 100*time.Millisecond)
	sl.SetClock(func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) })
	sl.Event(Event{Kind: SpanEnd, Span: SpanTrainMix, Key: "mix/2/0", Dur: 50 * time.Millisecond})
	sl.Event(Event{Kind: SpanBegin, Span: SpanTrainMix, Dur: time.Hour}) // begins never log
	sl.Event(Event{Kind: Point, Span: PointTrainRetry})
	if b.Len() != 0 {
		t.Fatalf("below-threshold events logged: %q", b.String())
	}
	sl.Event(Event{Kind: SpanEnd, Span: SpanTrainMix, Key: "mix/2/1", Attempt: 3, Dur: 250 * time.Millisecond, Err: "boom"})
	line := b.String()
	for _, want := range []string{"2026-01-02T03:04:05Z", "SLOW train.mix", "key=mix/2/1", "attempts=3", "took=250ms", `err="boom"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow line missing %q: %q", want, line)
		}
	}
}

// --- simulator bridge ---

func TestSimTracerBridge(t *testing.T) {
	rec := NewRecording()
	br := NewSimTracer(rec)
	br.Event(sim.TraceEvent{Kind: sim.TraceStart, Time: 1.0, TemplateID: 7, Stream: 2})
	br.Event(sim.TraceEvent{Kind: sim.TraceStage, Time: 1.5, TemplateID: 7, Stream: 2, Table: "store_sales"})
	br.Event(sim.TraceEvent{Kind: sim.TraceComplete, Time: 3.5, TemplateID: 7, Stream: 2})

	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	if events[0].Kind != SpanBegin || events[0].Span != SpanSimQuery || events[0].Value != 1.0 {
		t.Errorf("begin: %+v", events[0])
	}
	if events[1].Kind != Point || events[1].Span != PointSimStage || !strings.Contains(events[1].Key, "store_sales") {
		t.Errorf("stage: %+v", events[1])
	}
	end := events[2]
	if end.Kind != SpanEnd || end.Dur != 2500*time.Millisecond {
		t.Errorf("end: %+v (want virtual Dur 2.5s)", end)
	}

	// Completion without a matched start: no Dur, no panic.
	br.Event(sim.TraceEvent{Kind: sim.TraceComplete, Time: 9, Stream: 5})
	if last := rec.Events()[3]; last.Dur != 0 {
		t.Errorf("unmatched completion carried Dur %v", last.Dur)
	}

	// Nil-observer bridge drops everything without dereferencing.
	NewSimTracer(nil).Event(sim.TraceEvent{Kind: sim.TraceStart})
}

func TestSimTracerOnEngine(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultConfig())
	rec := NewRecording()
	eng.SetTracer(NewSimTracer(rec))
	spec := sim.QuerySpec{
		TemplateID: 1,
		Stages: []sim.Stage{
			{Kind: sim.StageSeqIO, Table: "t", Amount: 1e8},
			{Kind: sim.StageCPU, Amount: 0.5},
		},
		WorkingSetBytes: 1e6,
	}
	if _, err := eng.RunIsolated(spec); err != nil {
		t.Fatal(err)
	}
	if rec.CountSpan(SpanSimQuery) < 2 {
		t.Fatalf("engine run produced %d sim.query events, want begin+end", rec.CountSpan(SpanSimQuery))
	}
	begins := 0
	for _, ev := range rec.Events() {
		if ev.Span == SpanSimQuery && ev.Kind == SpanBegin {
			begins++
		}
	}
	if begins == 0 {
		t.Fatal("no sim.query begin recorded")
	}
}
