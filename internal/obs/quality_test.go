package obs

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// driftTestConfig is small enough that every state transition can be
// exercised with a handful of samples.
func driftTestConfig() DriftConfig {
	return DriftConfig{MinSamples: 4, Delta: 0.05, Lambda: 0.5, StaleMRE: 0.35, RecoverMRE: 0.15, Window: 4}
}

func TestDriftConfigDefaults(t *testing.T) {
	cfg := NewQuality(DriftConfig{}).Config()
	if cfg.MinSamples != 10 || cfg.Delta != 0.05 || cfg.Lambda != 2 ||
		cfg.StaleMRE != 0.35 || cfg.RecoverMRE != 0.15 || cfg.Window != 12 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if !reflect.DeepEqual(cfg.ErrorBuckets, DefaultErrorBuckets) {
		t.Errorf("ErrorBuckets = %v, want DefaultErrorBuckets", cfg.ErrorBuckets)
	}
}

func TestDriftStateString(t *testing.T) {
	cases := map[DriftState]string{
		DriftHealthy:  "healthy",
		DriftDegraded: "degraded",
		DriftStale:    "stale",
		DriftState(9): "state(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestTransitionLabel(t *testing.T) {
	cases := []struct {
		from, to DriftState
		want     string
	}{
		{DriftHealthy, DriftDegraded, "healthy>degraded"},
		{DriftDegraded, DriftStale, "degraded>stale"},
		{DriftDegraded, DriftHealthy, "degraded>healthy"},
		{DriftStale, DriftDegraded, "stale>degraded"},
		{DriftHealthy, DriftStale, "transition"}, // no direct edge
	}
	for _, c := range cases {
		if got := TransitionLabel(c.from, c.to); got != c.want {
			t.Errorf("TransitionLabel(%v, %v) = %q, want %q", c.from, c.to, got, c.want)
		}
	}
}

// feedUntil feeds err repeatedly until the template transitions,
// returning the transition result; it fails the test if no transition
// happens within limit samples.
func feedUntil(t *testing.T, q *Quality, template int, err float64, limit int) DriftResult {
	t.Helper()
	for i := 0; i < limit; i++ {
		if r := q.Observe(template, err); r.Transitioned {
			return r
		}
	}
	t.Fatalf("no transition after %d samples of %+.2f (state %v)", limit, err, q.State(template))
	return DriftResult{}
}

// TestDriftStateMachineWalk drives one template around the full cycle:
// healthy → degraded (detector fires) → stale (error level stays high)
// → degraded → healthy (error level recovers).
func TestDriftStateMachineWalk(t *testing.T) {
	q := NewQuality(driftTestConfig())

	// Baseline: accurate predictions.
	for i := 0; i < 6; i++ {
		if r := q.Observe(7, 0.01); r.Transitioned {
			t.Fatalf("transition during baseline at sample %d", i)
		}
	}

	r := feedUntil(t, q, 7, 0.5, 20) // sustained +50% error
	if r.Previous != DriftHealthy || r.State != DriftDegraded {
		t.Fatalf("first transition %v→%v, want healthy→degraded", r.Previous, r.State)
	}
	if r.Detector != 0 {
		t.Errorf("detector statistic not reset on transition: %v", r.Detector)
	}

	r = feedUntil(t, q, 7, 0.5, 20) // error level stays ≥ StaleMRE
	if r.Previous != DriftDegraded || r.State != DriftStale {
		t.Fatalf("second transition %v→%v, want degraded→stale", r.Previous, r.State)
	}

	r = feedUntil(t, q, 7, 0.01, 20) // retrained: error collapses
	if r.Previous != DriftStale || r.State != DriftDegraded {
		t.Fatalf("third transition %v→%v, want stale→degraded", r.Previous, r.State)
	}

	r = feedUntil(t, q, 7, 0.01, 20)
	if r.Previous != DriftDegraded || r.State != DriftHealthy {
		t.Fatalf("fourth transition %v→%v, want degraded→healthy", r.Previous, r.State)
	}

	rep := q.Report()
	if len(rep.Templates) != 1 || rep.Templates[0].Transitions != 4 {
		t.Errorf("report after the walk: %+v", rep)
	}
}

// TestDriftConstantBiasNeverFires: a template whose predictions carry a
// fixed bias from the start is not drifting — the Page-Hinkley running
// mean absorbs the offset and the template stays healthy.
func TestDriftConstantBiasNeverFires(t *testing.T) {
	q := NewQuality(driftTestConfig())
	for i := 0; i < 200; i++ {
		if r := q.Observe(3, 0.30); r.Transitioned {
			t.Fatalf("constant +30%% bias fired a transition at sample %d", i)
		}
	}
	if s := q.State(3); s != DriftHealthy {
		t.Errorf("state after constant bias = %v, want healthy", s)
	}
}

func TestObserveDropsNonFinite(t *testing.T) {
	q := NewQuality(driftTestConfig())
	q.Observe(1, 0.1)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := q.Observe(1, bad)
		if r.Count != 1 || r.Transitioned {
			t.Errorf("Observe(%v) = %+v, want count 1 and no transition", bad, r)
		}
	}
	if rep := q.Report(); rep.Samples != 1 {
		t.Errorf("samples after non-finite feeds = %d, want 1", rep.Samples)
	}
}

func TestQualityStateUnknownTemplate(t *testing.T) {
	q := NewQuality(DriftConfig{})
	if s := q.State(404); s != DriftHealthy {
		t.Errorf("State(unknown) = %v, want healthy", s)
	}
}

func TestQualityReportOrderingAndQuantiles(t *testing.T) {
	q := NewQuality(DriftConfig{})
	for _, template := range []int{71, 2, 22} {
		for i := 0; i < 10; i++ {
			q.Observe(template, 0.08)
		}
	}
	rep := q.Report()
	if rep.Samples != 30 || rep.Healthy != 3 || rep.Degraded != 0 || rep.Stale != 0 {
		t.Fatalf("report totals: %+v", rep)
	}
	var ids []int
	for _, tq := range rep.Templates {
		ids = append(ids, tq.Template)
	}
	if !reflect.DeepEqual(ids, []int{2, 22, 71}) {
		t.Errorf("templates not sorted: %v", ids)
	}
	tq := rep.Templates[0]
	if tq.Count != 10 || math.Abs(tq.MRE-0.08) > 1e-9 || tq.LastError != 0.08 {
		t.Errorf("template summary: %+v", tq)
	}
	// All 10 samples land in the (0.05, 0.1] bucket, so every quantile
	// interpolates inside it.
	for _, p := range []float64{tq.P50, tq.P90, tq.P99} {
		if p <= 0.05 || p > 0.1 {
			t.Errorf("quantile %v outside the observed bucket (0.05, 0.1]", p)
		}
	}
}

func TestQualityReportNilReceiver(t *testing.T) {
	var q *Quality
	rep := q.Report()
	if rep.Samples != 0 || rep.Templates == nil || len(rep.Templates) != 0 {
		t.Errorf("nil Report() = %+v, want empty non-nil templates", rep)
	}
}

// TestQualityDeterminism: the same feedback sequence always yields the
// same report — the detector has no clocks and no randomness.
func TestQualityDeterminism(t *testing.T) {
	run := func() QualityReport {
		q := NewQuality(driftTestConfig())
		errs := []float64{0.02, -0.05, 0.4, 0.5, 0.45, -0.1, 0.5, 0.6, 0.5, 0.4, 0.5, 0.5, 0.45, 0.55}
		for round := 0; round < 3; round++ {
			for i, e := range errs {
				q.Observe(10+i%3, e)
			}
		}
		return q.Report()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("identical feeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestQualityWritePrometheusFamilies(t *testing.T) {
	q := NewQuality(DriftConfig{})
	q.Observe(71, 0.2)
	var b strings.Builder
	if err := q.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`contender_quality_feedback_total{template="71"} 1`,
		`contender_quality_relative_error_count{template="71"} 1`,
		`contender_quality_mre{template="71"} 0.2`,
		`contender_quality_state{template="71"} 0`,
		`contender_quality_transitions_total{template="71"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestObserveWarmPathAllocs: once a template's tracker exists, Observe
// must not allocate — the serving layer calls it per prediction.
func TestObserveWarmPathAllocs(t *testing.T) {
	q := NewQuality(DriftConfig{})
	q.Observe(5, 0.1) // cold path: tracker + handles
	if avg := testing.AllocsPerRun(200, func() { q.Observe(5, 0.07) }); avg != 0 {
		t.Errorf("warm Observe allocates %.1f allocs/op, want 0", avg)
	}
}

func TestQualityConcurrentObserve(t *testing.T) {
	q := NewQuality(DriftConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Observe(g%4, 0.1)
				q.State(g % 4)
			}
		}(g)
	}
	wg.Wait()
	rep := q.Report()
	if rep.Samples != 8*200 {
		t.Errorf("samples = %d, want %d", rep.Samples, 8*200)
	}
	if len(rep.Templates) != 4 {
		t.Errorf("templates = %d, want 4", len(rep.Templates))
	}
}
