package obs

import (
	"time"

	"contender/internal/sim"
)

// SimTracer bridges the simulator's executor tracer (sim.Tracer) into
// the span model: query admissions become sim.query SpanBegins, stage
// transitions become sim.stage Points, and completions become
// sim.query SpanEnds whose Dur is the *virtual* query latency
// (simulated seconds scaled to time.Duration) and whose Value is the
// virtual completion time. Because the simulator is deterministic,
// bridged events are fully reproducible and safe for golden logs.
//
// The bridge tracks per-stream admission times and is not safe for
// concurrent use — matching the sim.Engine it observes, which calls
// its tracer inline from a single goroutine.
type SimTracer struct {
	o     Observer
	start map[int]float64 // stream -> virtual admission time
}

// NewSimTracer returns a bridge forwarding to o. A nil o yields a
// bridge that drops everything (still usable, never nil-dereferences).
func NewSimTracer(o Observer) *SimTracer {
	return &SimTracer{o: o, start: map[int]float64{}}
}

// Event implements sim.Tracer.
func (t *SimTracer) Event(ev sim.TraceEvent) {
	if t.o == nil {
		return
	}
	switch ev.Kind {
	case sim.TraceStart:
		t.start[ev.Stream] = ev.Time
		Emit(t.o, Event{
			Kind:     SpanBegin,
			Span:     SpanSimQuery,
			Template: ev.TemplateID,
			Stream:   ev.Stream,
			Value:    ev.Time,
		})
	case sim.TraceStage:
		Emit(t.o, Event{
			Kind:     Point,
			Span:     PointSimStage,
			Key:      stageKey(ev),
			Template: ev.TemplateID,
			Stream:   ev.Stream,
			Value:    ev.Time,
		})
	case sim.TraceComplete:
		begin, ok := t.start[ev.Stream]
		if ok {
			delete(t.start, ev.Stream)
		}
		out := Event{
			Kind:     SpanEnd,
			Span:     SpanSimQuery,
			Template: ev.TemplateID,
			Stream:   ev.Stream,
			Value:    ev.Time,
		}
		if ok {
			out.Dur = time.Duration((ev.Time - begin) * float64(time.Second))
		}
		Emit(t.o, out)
	}
}

func stageKey(ev sim.TraceEvent) string {
	if ev.Table != "" {
		return ev.Stage.String() + "(" + ev.Table + ")"
	}
	return ev.Stage.String()
}
