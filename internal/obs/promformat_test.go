package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPromEscape: the Prometheus text format escapes exactly backslash,
// double quote, and newline in label values — everything else,
// including non-ASCII UTF-8, passes through verbatim (strconv.Quote
// would corrupt it into \uNNNN sequences).
func TestPromEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", `""`},
		{"train.mix", `"train.mix"`},
		{`path\to`, `"path\\to"`},
		{`say "hi"`, `"say \"hi\""`},
		{"line1\nline2", `"line1\nline2"`},
		{"mixed\\\"\n", `"mixed\\\"\n"`},
		{"日本語 η=0.5", `"日本語 η=0.5"`},   // UTF-8 verbatim
		{"tab\there", "\"tab\there\""}, // tabs are legal in label values
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestPromEscapeInExposition: a label value with every escapable byte
// survives a full WritePrometheus round trip in escaped form.
func TestPromEscapeInExposition(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "escaping regression", "key").With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{key="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %s:\n%s", want, b.String())
	}
	if strings.Count(b.String(), "\n") != 3 { // HELP, TYPE, one sample
		t.Errorf("raw newline leaked into a label value:\n%q", b.String())
	}
}

// TestQuantileEdgeCases: out-of-range and non-finite q never panic or
// return garbage, on both empty and populated histograms.
func TestQuantileEdgeCases(t *testing.T) {
	empty := HistogramSnapshot{}
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4} {
		h.Observe(v)
	}
	populated := h.snapshot()

	cases := []struct {
		name string
		snap HistogramSnapshot
		q    float64
		want func(float64) bool
	}{
		{"empty snapshot", empty, 0.5, func(v float64) bool { return v == 0 }},
		{"empty q=NaN", empty, math.NaN(), func(v float64) bool { return v == 0 }},
		{"populated q=NaN", populated, math.NaN(), func(v float64) bool { return v == 0 }},
		{"q below range clamps to min", populated, -3, func(v float64) bool { return v >= 0 && v <= 1 }},
		{"q above range clamps to max", populated, 7, func(v float64) bool { return v == 5 }},
		{"q=0", populated, 0, func(v float64) bool { return v >= 0 && v <= 1 }},
		{"q=1 is the last finite bound", populated, 1, func(v float64) bool { return v == 5 }},
		{"median interpolates", populated, 0.5, func(v float64) bool { return v > 1 && v <= 2 }},
		{"zero-count snapshot with buckets", HistogramSnapshot{Buckets: []Bucket{{Le: 1}}}, 0.9,
			func(v float64) bool { return v == 0 }},
	}
	for _, c := range cases {
		if got := c.snap.Quantile(c.q); !c.want(got) || math.IsNaN(got) {
			t.Errorf("%s: Quantile(%v) = %v", c.name, c.q, got)
		}
	}
}

// TestSlowLogEdgeCases covers the boundary conditions of the threshold
// comparison.
func TestSlowLogEdgeCases(t *testing.T) {
	fixed := func() time.Time { return time.Unix(0, 0).UTC() }

	t.Run("zero duration at zero threshold logs", func(t *testing.T) {
		var b strings.Builder
		sl := NewSlowLog(&b, 0)
		sl.SetClock(fixed)
		sl.Event(Event{Kind: SpanEnd, Span: SpanServePredictKnown})
		if !strings.Contains(b.String(), "SLOW "+SpanServePredictKnown) {
			t.Errorf("zero-duration span not logged at threshold 0:\n%q", b.String())
		}
	})

	t.Run("duration equal to threshold logs", func(t *testing.T) {
		var b strings.Builder
		sl := NewSlowLog(&b, time.Millisecond)
		sl.SetClock(fixed)
		sl.Event(Event{Kind: SpanEnd, Span: SpanTrainMix, Dur: time.Millisecond})
		if !strings.Contains(b.String(), "took=1ms") {
			t.Errorf("span exactly at the threshold not logged:\n%q", b.String())
		}
	})

	t.Run("just under threshold is silent", func(t *testing.T) {
		var b strings.Builder
		sl := NewSlowLog(&b, time.Millisecond)
		sl.SetClock(fixed)
		sl.Event(Event{Kind: SpanEnd, Span: SpanTrainMix, Dur: time.Millisecond - time.Nanosecond})
		if b.Len() != 0 {
			t.Errorf("sub-threshold span logged:\n%q", b.String())
		}
	})

	t.Run("begins and points never log", func(t *testing.T) {
		var b strings.Builder
		sl := NewSlowLog(&b, 0)
		sl.SetClock(fixed)
		sl.Event(Event{Kind: SpanBegin, Span: SpanTrainMix, Dur: time.Hour})
		sl.Event(Event{Kind: Point, Span: PointQualityDrift, Dur: time.Hour})
		if b.Len() != 0 {
			t.Errorf("non-end events logged:\n%q", b.String())
		}
	})
}

// TestSlowLogConcurrent: concurrent emits interleave whole lines (run
// under -race this also proves the mutex discipline).
func TestSlowLogConcurrent(t *testing.T) {
	var b syncBuilder
	sl := NewSlowLog(&b, 0)
	sl.SetClock(func() time.Time { return time.Unix(0, 0).UTC() })
	done := make(chan struct{})
	const goroutines, emits = 8, 50
	for g := 0; g < goroutines; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < emits; i++ {
				sl.Event(Event{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: time.Microsecond})
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != goroutines*emits {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*emits)
	}
	for _, line := range lines {
		if !strings.Contains(line, "SLOW "+SpanServePredictKnown) || !strings.Contains(line, "took=1µs") {
			t.Errorf("torn log line: %q", line)
		}
	}
}

// syncBuilder is a goroutine-safe strings.Builder for the concurrency
// test: SlowLog serializes writers, but the final read must also be
// safely published.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
