package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Prediction-quality telemetry: Feedback pairs an observed latency with
// the prediction that was served for it, and this file turns the
// resulting stream of signed relative errors into per-template accuracy
// statistics (counts, rolling MRE, fixed-bucket error histograms with
// quantiles) plus a deterministic drift detector that moves each
// template through healthy → degraded → stale with hysteresis.
//
// Everything here is allocation-conscious: after the first feedback for
// a template its tracker caches every metric handle and label string,
// so the warm Observe path performs no heap allocations — the serving
// layer can call it per prediction.

// DriftState is a template's prediction-quality state.
type DriftState uint8

const (
	// DriftHealthy: no drift detected; predictions are trustworthy.
	DriftHealthy DriftState = iota
	// DriftDegraded: the drift detector fired — the error distribution
	// has shifted since training and predictions should be treated with
	// caution.
	DriftDegraded
	// DriftStale: the error level stayed high after the drift fired —
	// the template's model no longer describes the workload and should
	// be retrained.
	DriftStale
)

// String returns the canonical lowercase state name.
func (s DriftState) String() string {
	switch s {
	case DriftHealthy:
		return "healthy"
	case DriftDegraded:
		return "degraded"
	case DriftStale:
		return "stale"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}

// TransitionLabel renders a state transition as "from>to" using only
// preallocated constants, so emitting a drift event from a hot path
// performs no string concatenation.
func TransitionLabel(from, to DriftState) string {
	switch {
	case from == DriftHealthy && to == DriftDegraded:
		return "healthy>degraded"
	case from == DriftDegraded && to == DriftStale:
		return "degraded>stale"
	case from == DriftDegraded && to == DriftHealthy:
		return "degraded>healthy"
	case from == DriftStale && to == DriftDegraded:
		return "stale>degraded"
	}
	return "transition"
}

// DefaultErrorBuckets are the fixed histogram bounds for |relative
// error|: dense below 25% (the paper's headline MRE region), sparse
// above.
var DefaultErrorBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.75, 1, 2.5,
}

// DriftConfig tunes the per-template drift detector. The zero value
// selects the defaults noted on each field; every parameter is
// deterministic (no clocks, no randomness), so the same feedback
// sequence always produces the same state trajectory.
type DriftConfig struct {
	// MinSamples is the number of feedback samples a template must
	// accumulate before any transition fires (default 10).
	MinSamples int
	// Delta is the Page-Hinkley drift tolerance: per-sample deviations
	// from the running mean smaller than Delta never accumulate
	// (default 0.05, i.e. 5 points of relative error).
	Delta float64
	// Lambda is the Page-Hinkley threshold: healthy → degraded fires
	// when the accumulated deviation statistic reaches Lambda
	// (default 2).
	Lambda float64
	// StaleMRE: a degraded template whose trailing-window mean
	// |relative error| is at or above this level after a full dwell
	// window becomes stale (default 0.35).
	StaleMRE float64
	// RecoverMRE: a degraded (or stale) template whose trailing-window
	// mean |relative error| falls to this level or below steps down one
	// state (default 0.15). Keeping RecoverMRE well under StaleMRE is
	// the hysteresis band.
	RecoverMRE float64
	// Window is both the trailing-window length for the level checks
	// and the dwell (in samples) a template must spend in a state
	// before leaving it again (default 12).
	Window int
	// ErrorBuckets are the |relative error| histogram bounds
	// (DefaultErrorBuckets when nil).
	ErrorBuckets []float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.Lambda <= 0 {
		c.Lambda = 2
	}
	if c.StaleMRE <= 0 {
		c.StaleMRE = 0.35
	}
	if c.RecoverMRE <= 0 {
		c.RecoverMRE = 0.15
	}
	if c.Window <= 0 {
		c.Window = 12
	}
	if c.ErrorBuckets == nil {
		c.ErrorBuckets = DefaultErrorBuckets
	}
	return c
}

// DriftResult reports the outcome of one feedback observation.
type DriftResult struct {
	// State is the template's state after folding in the sample.
	State DriftState
	// Previous is the state before the sample; Transitioned is true
	// when they differ.
	Previous     DriftState
	Transitioned bool
	// Count is the template's total feedback samples so far.
	Count int64
	// Detector is the current Page-Hinkley statistic (0 right after a
	// transition — the detector resets so the new regime starts clean).
	Detector float64
	// WindowMRE is the trailing-window mean |relative error|.
	WindowMRE float64
}

// Quality aggregates prediction-accuracy feedback per template. It owns
// its own metric Registry with the quality.* families:
//
//	contender_quality_feedback_total{template=...}     feedback samples
//	contender_quality_relative_error{template=...}     |rel err| histogram
//	contender_quality_mre{template=...}                rolling mean |rel err|
//	contender_quality_state{template=...}              0 healthy, 1 degraded, 2 stale
//	contender_quality_transitions_total{template=...}  drift transitions
//
// All methods are safe for concurrent use. Observe is allocation-free
// once a template's tracker exists.
type Quality struct {
	cfg DriftConfig
	reg *Registry

	feedback    *CounterVec
	errHist     *HistogramVec
	mre         *GaugeVec
	state       *GaugeVec
	transitions *CounterVec
	dropped     *Counter

	mu       sync.RWMutex
	trackers map[int]*templateQuality
}

// NewQuality returns a quality aggregator with the given detector
// configuration (zero value: defaults).
func NewQuality(cfg DriftConfig) *Quality {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	return &Quality{
		cfg:         cfg,
		reg:         reg,
		feedback:    reg.CounterVec("contender_quality_feedback_total", "Observed-latency feedback samples by template.", "template"),
		errHist:     reg.HistogramVec("contender_quality_relative_error", "Absolute relative prediction error by template.", "template", cfg.ErrorBuckets),
		mre:         reg.GaugeVec("contender_quality_mre", "Rolling mean relative error by template.", "template"),
		state:       reg.GaugeVec("contender_quality_state", "Drift state by template: 0 healthy, 1 degraded, 2 stale.", "template"),
		transitions: reg.CounterVec("contender_quality_transitions_total", "Drift state transitions by template.", "template"),
		dropped:     reg.Counter("contender_quality_dropped_total", "Feedback samples dropped before aggregation (full shard rings)."),
		trackers:    map[int]*templateQuality{},
	}
}

// AddDropped records n feedback samples that were lost before reaching
// the aggregator — the sharded serving layer folds its ring-overflow
// drop counts in here at drain time, so lossy-by-design telemetry stays
// visible to operators (contender_quality_dropped_total on /metrics,
// "dropped" in the /quality payload).
func (q *Quality) AddDropped(n int64) {
	if q == nil || n <= 0 {
		return
	}
	q.dropped.Add(n)
}

// Dropped returns the total feedback samples recorded as dropped.
func (q *Quality) Dropped() int64 {
	if q == nil {
		return 0
	}
	return q.dropped.Value()
}

// Config returns the effective detector configuration (defaults filled).
func (q *Quality) Config() DriftConfig { return q.cfg }

// Registry exposes the quality metric families for exposition (the CLI
// metrics endpoint appends them to /metrics).
func (q *Quality) Registry() *Registry { return q.reg }

// templateQuality is one template's tracker. The metric handles and the
// window ring are allocated once, on first feedback, so the warm path
// is allocation-free.
type templateQuality struct {
	mu sync.Mutex

	template int
	count    int64
	sumAbs   float64
	last     float64

	// Two-sided Page-Hinkley on the signed relative error: a sustained
	// shift of the error mean in either direction accumulates in one of
	// the two statistics; per-template bias present from the start is
	// absorbed into the running mean and never fires.
	phN, phMean  float64
	phPos, phMin float64
	phNeg, phMax float64

	state           DriftState
	transitionCount int64
	sinceTransition int64

	window []float64 // ring of trailing |relative error|
	wIdx   int
	wFill  int
	wSum   float64

	feedback *Counter
	errHist  *Histogram
	mre      *Gauge
	stateG   *Gauge
	transC   *Counter
}

func (q *Quality) tracker(template int) *templateQuality {
	q.mu.RLock()
	t, ok := q.trackers[template]
	q.mu.RUnlock()
	if ok {
		return t
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.trackers[template]; ok {
		return t
	}
	label := strconv.Itoa(template)
	t = &templateQuality{
		template: template,
		window:   make([]float64, q.cfg.Window),
		feedback: q.feedback.With(label),
		errHist:  q.errHist.With(label),
		mre:      q.mre.With(label),
		stateG:   q.state.With(label),
		transC:   q.transitions.With(label),
	}
	q.trackers[template] = t
	return t
}

// Observe folds one signed relative error ((observed-predicted)/observed)
// into the template's tracker and runs the drift state machine.
// Non-finite samples are dropped (the current state is returned
// unchanged). The warm path performs no heap allocations.
func (q *Quality) Observe(template int, signedErr float64) DriftResult {
	t := q.tracker(template)
	t.mu.Lock()
	defer t.mu.Unlock()
	return q.observeLocked(t, signedErr)
}

// ObserveRun folds a run of signed relative errors for one template under
// a single tracker lock — the sharded feedback drain uses it to amortize
// locking when a ring buffer holds consecutive samples for one template.
// The sequence of states is exactly what per-sample Observe calls would
// produce. It returns the result of the final sample (the current state
// for an empty run) and the number of drift transitions in the run.
func (q *Quality) ObserveRun(template int, signed []float64) (DriftResult, int) {
	t := q.tracker(template)
	t.mu.Lock()
	defer t.mu.Unlock()
	res := DriftResult{State: t.state, Previous: t.state, Count: t.count}
	transitions := 0
	for _, s := range signed {
		res = q.observeLocked(t, s)
		if res.Transitioned {
			transitions++
		}
	}
	return res, transitions
}

// observeLocked is the Observe body; the caller holds t.mu.
func (q *Quality) observeLocked(t *templateQuality, signedErr float64) DriftResult {
	if math.IsNaN(signedErr) || math.IsInf(signedErr, 0) {
		return DriftResult{State: t.state, Previous: t.state, Count: t.count}
	}
	abs := signedErr
	if abs < 0 {
		abs = -abs
	}
	t.count++
	t.sumAbs += abs
	t.last = signedErr
	t.feedback.Inc()
	t.errHist.Observe(abs)

	// Page-Hinkley update (two-sided, with tolerance Delta).
	t.phN++
	t.phMean += (signedErr - t.phMean) / t.phN
	t.phPos += signedErr - t.phMean - q.cfg.Delta
	if t.phPos < t.phMin {
		t.phMin = t.phPos
	}
	t.phNeg += signedErr - t.phMean + q.cfg.Delta
	if t.phNeg > t.phMax {
		t.phMax = t.phNeg
	}
	stat := t.phPos - t.phMin
	if neg := t.phMax - t.phNeg; neg > stat {
		stat = neg
	}

	// Trailing window of |relative error| for the level checks.
	if t.wFill == len(t.window) {
		t.wSum -= t.window[t.wIdx]
	} else {
		t.wFill++
	}
	t.window[t.wIdx] = abs
	t.wSum += abs
	t.wIdx++
	if t.wIdx == len(t.window) {
		t.wIdx = 0
	}
	wm := t.wSum / float64(t.wFill)

	t.sinceTransition++
	prev := t.state
	if t.count >= int64(q.cfg.MinSamples) {
		dwell := t.sinceTransition >= int64(q.cfg.Window)
		switch t.state {
		case DriftHealthy:
			if stat >= q.cfg.Lambda && t.sinceTransition >= int64(q.cfg.MinSamples) {
				t.state = DriftDegraded
			}
		case DriftDegraded:
			if dwell && wm >= q.cfg.StaleMRE {
				t.state = DriftStale
			} else if dwell && wm <= q.cfg.RecoverMRE {
				t.state = DriftHealthy
			}
		case DriftStale:
			if dwell && wm <= q.cfg.RecoverMRE {
				t.state = DriftDegraded
			}
		}
	}
	transitioned := t.state != prev
	if transitioned {
		t.transitionCount++
		t.transC.Inc()
		t.sinceTransition = 0
		// Reset the detector: the new regime's mean becomes the new
		// baseline, so recovery is judged by error level, not by the
		// shift that already fired.
		t.phN, t.phMean = 0, 0
		t.phPos, t.phMin = 0, 0
		t.phNeg, t.phMax = 0, 0
		stat = 0
	}
	t.mre.Set(t.sumAbs / float64(t.count))
	t.stateG.Set(float64(t.state))
	return DriftResult{
		State:        t.state,
		Previous:     prev,
		Transitioned: transitioned,
		Count:        t.count,
		Detector:     stat,
		WindowMRE:    wm,
	}
}

// ResetTemplate rearms a template's tracker after its model was
// replaced: the drift detector, trailing window, rolling error sums, and
// state machine restart from healthy, so the new model is judged only on
// its own feedback instead of inheriting the stale regime's statistics.
// Monotonic counters (feedback and transition totals, histograms) are
// preserved — they are cumulative telemetry, not model state. Resetting
// an unknown template is a no-op.
func (q *Quality) ResetTemplate(template int) {
	if q == nil {
		return
	}
	q.mu.RLock()
	t, ok := q.trackers[template]
	q.mu.RUnlock()
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count = 0
	t.sumAbs = 0
	t.last = 0
	t.phN, t.phMean = 0, 0
	t.phPos, t.phMin = 0, 0
	t.phNeg, t.phMax = 0, 0
	t.state = DriftHealthy
	t.sinceTransition = 0
	for i := range t.window {
		t.window[i] = 0
	}
	t.wIdx, t.wFill, t.wSum = 0, 0, 0
	t.mre.Set(0)
	t.stateG.Set(float64(DriftHealthy))
}

// State returns a template's current drift state (healthy when the
// template has never received feedback).
func (q *Quality) State(template int) DriftState {
	q.mu.RLock()
	t, ok := q.trackers[template]
	q.mu.RUnlock()
	if !ok {
		return DriftHealthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// TemplateQuality is one template's accuracy summary in a QualityReport.
type TemplateQuality struct {
	Template    int     `json:"template"`
	Count       int64   `json:"count"`
	MRE         float64 `json:"mre"`
	WindowMRE   float64 `json:"window_mre"`
	P50         float64 `json:"p50"`
	P90         float64 `json:"p90"`
	P99         float64 `json:"p99"`
	State       string  `json:"state"`
	Transitions int64   `json:"transitions"`
	LastError   float64 `json:"last_error"`
}

// QualityReport is a point-in-time summary of prediction quality across
// all templates that received feedback, sorted by template ID.
type QualityReport struct {
	Samples   int64             `json:"samples"`
	Dropped   int64             `json:"dropped"`
	Healthy   int               `json:"healthy"`
	Degraded  int               `json:"degraded"`
	Stale     int               `json:"stale"`
	Templates []TemplateQuality `json:"templates"`
}

// Report snapshots every template tracker. A nil Quality reports zero
// templates, so callers can expose the endpoint unconditionally.
func (q *Quality) Report() QualityReport {
	rep := QualityReport{Templates: []TemplateQuality{}}
	if q == nil {
		return rep
	}
	rep.Dropped = q.dropped.Value()
	q.mu.RLock()
	trackers := make([]*templateQuality, 0, len(q.trackers))
	for _, t := range q.trackers {
		trackers = append(trackers, t)
	}
	q.mu.RUnlock()
	sort.Slice(trackers, func(i, j int) bool { return trackers[i].template < trackers[j].template })
	for _, t := range trackers {
		t.mu.Lock()
		tq := TemplateQuality{
			Template:    t.template,
			Count:       t.count,
			State:       t.state.String(),
			Transitions: t.transitionCount,
			LastError:   t.last,
		}
		if t.count > 0 {
			tq.MRE = t.sumAbs / float64(t.count)
		}
		if t.wFill > 0 {
			tq.WindowMRE = t.wSum / float64(t.wFill)
		}
		state := t.state
		t.mu.Unlock()
		hist := t.errHist.snapshot()
		tq.P50 = hist.Quantile(0.50)
		tq.P90 = hist.Quantile(0.90)
		tq.P99 = hist.Quantile(0.99)
		rep.Samples += tq.Count
		switch state {
		case DriftHealthy:
			rep.Healthy++
		case DriftDegraded:
			rep.Degraded++
		case DriftStale:
			rep.Stale++
		}
		rep.Templates = append(rep.Templates, tq)
	}
	return rep
}

// WritePrometheus renders the quality metric families in the Prometheus
// text exposition format.
func (q *Quality) WritePrometheus(w io.Writer) error { return q.reg.WritePrometheus(w) }

// ServeHTTP serves the quality report as JSON, making *Quality
// mountable directly on an http.ServeMux (the CLIs mount it at
// /quality beside /metrics).
func (q *Quality) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(q.Report())
}
