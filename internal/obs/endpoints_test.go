package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
)

// Golden-decode coverage for the /quality and /blame JSON endpoints:
// the field names are wire contract (dashboards parse them), and the
// payloads must be deterministic — arrays ordered by template or by
// (primary, neighbor), never by map iteration.

func TestQualityEndpointGolden(t *testing.T) {
	var q *Quality // nil-safe: mounted unconditionally
	rec := httptest.NewRecorder()
	q.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	const golden = `{
  "samples": 0,
  "dropped": 0,
  "healthy": 0,
  "degraded": 0,
  "stale": 0,
  "templates": []
}
`
	if got := rec.Body.String(); got != golden {
		t.Errorf("empty /quality body:\n%s\nwant:\n%s", got, golden)
	}

	q = NewQuality(DriftConfig{})
	q.Observe(9, 0.5)
	q.Observe(3, -0.25)
	rec = httptest.NewRecorder()
	q.ServeHTTP(rec, nil)
	var payload struct {
		Samples   int64 `json:"samples"`
		Templates []map[string]json.RawMessage
	}
	body := rec.Body.Bytes()
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	var generic map[string]json.RawMessage
	if err := json.Unmarshal(body, &generic); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "/quality", generic, []string{"samples", "dropped", "healthy", "degraded", "stale", "templates"})
	var templates []map[string]json.RawMessage
	if err := json.Unmarshal(generic["templates"], &templates); err != nil {
		t.Fatal(err)
	}
	if len(templates) != 2 {
		t.Fatalf("templates = %d entries, want 2", len(templates))
	}
	assertKeys(t, "/quality templates[0]", templates[0], []string{
		"template", "count", "mre", "window_mre", "p50", "p90", "p99", "state", "transitions", "last_error",
	})
	// Deterministic ordering: ascending template ID, independent of
	// observation or map order.
	ids := templateField(t, templates, "template")
	if !sort.IntsAreSorted(ids) {
		t.Errorf("templates not sorted by ID: %v", ids)
	}
	// Byte determinism: serving twice yields identical bodies.
	rec2 := httptest.NewRecorder()
	q.ServeHTTP(rec2, nil)
	if rec2.Body.String() != string(body) {
		t.Error("/quality body differs between identical snapshots")
	}
}

func TestBlameEndpointGolden(t *testing.T) {
	var b *Blame // nil-safe: mounted unconditionally
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	const golden = `{
  "samples": 0,
  "pairs": [],
  "aggressors": [],
  "victims": []
}
`
	if got := rec.Body.String(); got != golden {
		t.Errorf("empty /blame body:\n%s\nwant:\n%s", got, golden)
	}

	b = NewBlame(BlameConfig{})
	b.Observe(5, []int{9, 2}, []float64{1.5, 0.25})
	b.Observe(2, []int{5}, []float64{3})
	rec = httptest.NewRecorder()
	b.ServeHTTP(rec, nil)
	body := rec.Body.Bytes()
	var generic map[string]json.RawMessage
	if err := json.Unmarshal(body, &generic); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "/blame", generic, []string{"samples", "pairs", "aggressors", "victims"})
	var pairs []map[string]json.RawMessage
	if err := json.Unmarshal(generic["pairs"], &pairs); err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d entries, want 3", len(pairs))
	}
	assertKeys(t, "/blame pairs[0]", pairs[0], []string{
		"primary", "neighbor", "count", "seconds", "ewma_seconds", "last_seconds",
	})
	// Deterministic ordering: (primary, neighbor) ascending.
	prim := templateField(t, pairs, "primary")
	if !sort.IntsAreSorted(prim) {
		t.Errorf("pairs not sorted by primary: %v", prim)
	}
	var ranks []map[string]json.RawMessage
	if err := json.Unmarshal(generic["aggressors"], &ranks); err != nil {
		t.Fatal(err)
	}
	if len(ranks) == 0 {
		t.Fatal("no aggressors reported")
	}
	assertKeys(t, "/blame aggressors[0]", ranks[0], []string{"template", "seconds", "count"})
	rec2 := httptest.NewRecorder()
	b.ServeHTTP(rec2, nil)
	if rec2.Body.String() != string(body) {
		t.Error("/blame body differs between identical snapshots")
	}
}

func assertKeys(t *testing.T, where string, m map[string]json.RawMessage, want []string) {
	t.Helper()
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(got, sorted) {
		t.Errorf("%s fields = %v, want %v", where, got, sorted)
	}
}

func templateField(t *testing.T, entries []map[string]json.RawMessage, field string) []int {
	t.Helper()
	out := make([]int, len(entries))
	for i, e := range entries {
		if err := json.Unmarshal(e[field], &out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}
