package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SlowLog is an Observer that writes a line for every span that
// finishes slower than a configurable threshold — the classic
// slow-query log, generalized to every instrumented operation. A
// threshold of zero logs every span end (useful in tests); point
// events and span begins are never logged.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	clock     func() time.Time // test seam; nil means time.Now
}

// NewSlowLog returns a slow-operation log writing to w. Spans with
// Dur >= threshold are logged; threshold <= 0 logs all span ends.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// SetClock overrides the timestamp source (tests only).
func (s *SlowLog) SetClock(clock func() time.Time) { s.clock = clock }

// Threshold returns the configured threshold.
func (s *SlowLog) Threshold() time.Duration { return s.threshold }

// Event logs span ends at or above the threshold.
func (s *SlowLog) Event(ev Event) {
	if ev.Kind != SpanEnd || ev.Dur < s.threshold {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now
	if s.clock != nil {
		now = s.clock
	}
	fmt.Fprintf(s.w, "%s SLOW %s", now().Format(time.RFC3339), ev.Span)
	if ev.Key != "" {
		fmt.Fprintf(s.w, " key=%s", ev.Key)
	}
	if ev.Attempt > 1 {
		fmt.Fprintf(s.w, " attempts=%d", ev.Attempt)
	}
	fmt.Fprintf(s.w, " took=%s", ev.Dur)
	if ev.Err != "" {
		fmt.Fprintf(s.w, " err=%q", ev.Err)
	}
	fmt.Fprintln(s.w)
}
