package lhs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNumMixes(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{25, 2, 325},    // all pairs with replacement
		{25, 5, 118755}, // the paper's MPL-5 figure
		{25, 3, 2925},
		{1, 3, 1},
		{4, 1, 4},
	}
	for _, c := range cases {
		if got := NumMixes(c.n, c.k); got != c.want {
			t.Errorf("NumMixes(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestAllPairs(t *testing.T) {
	pairs := AllPairs(25)
	if len(pairs) != 325 {
		t.Fatalf("got %d pairs, want 325", len(pairs))
	}
	seen := make(map[string]bool)
	selfPairs := 0
	for _, p := range pairs {
		if len(p) != 2 {
			t.Fatalf("pair of size %d", len(p))
		}
		if p[0] > p[1] {
			t.Fatalf("pair %v not sorted", p)
		}
		if p[0] == p[1] {
			selfPairs++
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p.Key()] = true
	}
	if selfPairs != 25 {
		t.Fatalf("got %d self pairs, want 25", selfPairs)
	}
}

func TestSampleLatinProperty(t *testing.T) {
	// Classic LHS invariant: across the n sampled mixes, each dimension's
	// values form a permutation of 0..n-1 — every template is intersected
	// exactly once per dimension (Figure 1).
	const n, mpl = 25, 4
	rng := rand.New(rand.NewSource(9))
	mixes := Sample(n, mpl, rng)
	if len(mixes) != n {
		t.Fatalf("got %d mixes, want %d", len(mixes), n)
	}
	// Since mixes are sorted (normalized), check the aggregate count:
	// every template appears exactly mpl times across the design.
	count := make(map[int]int)
	for _, m := range mixes {
		if len(m) != mpl {
			t.Fatalf("mix size %d, want %d", len(m), mpl)
		}
		for _, v := range m {
			count[v]++
		}
	}
	for i := 0; i < n; i++ {
		if count[i] != mpl {
			t.Fatalf("template %d appears %d times, want %d", i, count[i], mpl)
		}
	}
}

func TestSampleDisjointDeduplicates(t *testing.T) {
	mixes := SampleDisjoint(10, 3, 4, 5)
	seen := make(map[string]bool)
	for _, m := range mixes {
		if seen[m.Key()] {
			t.Fatalf("duplicate mix %v", m)
		}
		seen[m.Key()] = true
	}
	if len(mixes) > 40 {
		t.Fatalf("too many mixes: %d", len(mixes))
	}
	if len(mixes) < 20 {
		t.Fatalf("suspiciously few mixes: %d", len(mixes))
	}
}

func TestMixesFor(t *testing.T) {
	// MPL 1 → one singleton per template.
	m1 := MixesFor(5, 1, 4, 1)
	if len(m1) != 5 || len(m1[0]) != 1 {
		t.Fatalf("MPL-1 design wrong: %v", m1)
	}
	// MPL 2 → exhaustive pairs.
	m2 := MixesFor(5, 2, 4, 1)
	if len(m2) != 15 {
		t.Fatalf("MPL-2 design has %d mixes, want 15", len(m2))
	}
	// MPL 3 → LHS.
	m3 := MixesFor(5, 3, 2, 1)
	for _, m := range m3 {
		if len(m) != 3 {
			t.Fatalf("MPL-3 mix size %d", len(m))
		}
	}
}

func TestMixHelpers(t *testing.T) {
	m := Mix{3, 5, 3}
	if !m.Contains(5) || m.Contains(4) {
		t.Fatal("Contains wrong")
	}
	w := m.WithoutOne(3)
	if len(w) != 2 || !w.Contains(3) || !w.Contains(5) {
		t.Fatalf("WithoutOne removed wrong element: %v", w)
	}
	if (Mix{1, 2}).Key() == (Mix{2, 1}).Key() {
		// Keys compare raw order; callers keep mixes normalized.
		t.Fatal("unsorted mixes must have different raw keys")
	}
}

func TestWithoutOneMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mix{1, 2}.WithoutOne(3)
}

func TestSampleEmpty(t *testing.T) {
	if Sample(0, 3, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("n=0 must return nil")
	}
	if Sample(5, 0, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("mpl=0 must return nil")
	}
}

// Property: every LHS design keeps mixes sorted and within range, and
// every template appears exactly mpl times.
func TestSampleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		mpl := 1 + rng.Intn(5)
		mixes := Sample(n, mpl, rng)
		count := make([]int, n)
		for _, m := range mixes {
			for i, v := range m {
				if v < 0 || v >= n {
					return false
				}
				if i > 0 && m[i-1] > v {
					return false // not sorted
				}
				count[v]++
			}
		}
		for _, c := range count {
			if c != mpl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
