// Package lhs implements the query-mix sampling machinery of Section 2 of
// the paper: enumeration of concurrent mixes (n-choose-k with replacement)
// and Latin Hypercube Sampling (LHS) of mixes at multiprogramming levels
// above 2, where exhaustive evaluation is prohibitively expensive.
//
// A "mix" is an unordered multiset of template indices of size MPL. LHS
// builds a k-dimensional hypercube whose axes are the n templates and picks
// n samples such that every template value on every axis is intersected
// exactly once (Figure 1 of the paper shows the 2-D case). One LHS run over
// n templates therefore yields n mixes, and every template appears in at
// most MPL mixes of that run.
package lhs

import (
	"math/rand"
	"sort"
)

// Mix is an unordered multiset of template indices executing concurrently.
// It is kept sorted ascending so equal mixes compare equal.
type Mix []int

// Key returns a canonical comparable representation of the mix, usable as a
// map key for deduplication.
func (m Mix) Key() string {
	b := make([]byte, 0, len(m)*3)
	for _, t := range m {
		b = append(b, byte('A'+t/26), byte('A'+t%26), ',')
	}
	return string(b)
}

// normalize sorts the mix in place and returns it.
func normalize(m Mix) Mix {
	sort.Ints(m)
	return m
}

// Contains reports whether the mix includes template t.
func (m Mix) Contains(t int) bool {
	for _, v := range m {
		if v == t {
			return true
		}
	}
	return false
}

// WithoutOne returns a copy of the mix with a single occurrence of t
// removed. It panics if t is not present. This is how a "primary at MPL k"
// observation extracts its k-1 concurrent queries.
func (m Mix) WithoutOne(t int) Mix {
	out := make(Mix, 0, len(m)-1)
	removed := false
	for _, v := range m {
		if v == t && !removed {
			removed = true
			continue
		}
		out = append(out, v)
	}
	if !removed {
		panic("lhs: template not in mix")
	}
	return out
}

// NumMixes returns the number of distinct mixes of k queries drawn with
// replacement from n templates: C(n+k-1, k). It returns the value as int64
// and saturates on overflow (not a concern at the paper's scales: 25
// templates at MPL 5 gives 118,755).
func NumMixes(n, k int) int64 {
	// C(n+k-1, k) computed multiplicatively.
	var res int64 = 1
	for i := int64(1); i <= int64(k); i++ {
		res = res * (int64(n) + i - 1) / i
	}
	return res
}

// AllPairs enumerates every distinct MPL-2 mix over n templates, including
// self-pairs (a template running with another instance of itself), matching
// the paper's exhaustive pairwise evaluation.
func AllPairs(n int) []Mix {
	out := make([]Mix, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			out = append(out, Mix{i, j})
		}
	}
	return out
}

// Sample performs one Latin Hypercube Sampling run: it returns n mixes of
// size mpl over n templates such that along each of the mpl dimensions every
// template index appears exactly once. The rng drives the permutation of
// each axis; a fixed seed gives a deterministic design.
func Sample(n, mpl int, rng *rand.Rand) []Mix {
	if n <= 0 || mpl <= 0 {
		return nil
	}
	// One independent permutation of 0..n-1 per dimension; sample i is the
	// i-th entry of every permutation. This is the classic LHS construction:
	// each value on each axis is intersected exactly once.
	perms := make([][]int, mpl)
	for d := 0; d < mpl; d++ {
		p := rng.Perm(n)
		perms[d] = p
	}
	mixes := make([]Mix, n)
	for i := 0; i < n; i++ {
		m := make(Mix, mpl)
		for d := 0; d < mpl; d++ {
			m[d] = perms[d][i]
		}
		mixes[i] = normalize(m)
	}
	return mixes
}

// SampleDisjoint runs `runs` LHS designs and concatenates them, dropping
// duplicate mixes across runs. The paper evaluates four disjoint LHS samples
// for MPLs 3–5 over its 25 templates.
func SampleDisjoint(n, mpl, runs int, seed int64) []Mix {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	var out []Mix
	for r := 0; r < runs; r++ {
		for _, m := range Sample(n, mpl, rng) {
			k := m.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, m)
		}
	}
	return out
}

// MixesFor returns the sampling design the paper uses at a given MPL:
// exhaustive pairs at MPL 2, `runs` disjoint LHS designs at MPL ≥ 3.
// MPL 1 returns one singleton mix per template (isolated execution).
func MixesFor(n, mpl, runs int, seed int64) []Mix {
	switch {
	case mpl <= 1:
		out := make([]Mix, n)
		for i := range out {
			out[i] = Mix{i}
		}
		return out
	case mpl == 2:
		return AllPairs(n)
	default:
		return SampleDisjoint(n, mpl, runs, seed)
	}
}
