package qep

import (
	"strings"
	"testing"
)

func TestParsePlanSimple(t *testing.T) {
	p, err := ParsePlan("Scan:store_sales:1e6:132")
	if err != nil {
		t.Fatal(err)
	}
	n := p.Root
	if n.Kind != SeqScan || n.Table != "store_sales" || n.Rows != 1e6 || n.Width != 132 {
		t.Fatalf("parsed %+v", n)
	}
}

func TestParsePlanNested(t *testing.T) {
	src := `Sort:4e6:100(
	  HashAggregate:4e6:100(
	    HashJoin:20e6:110(
	      Scan:item:2e4:294,
	      Index:catalog_sales:3e4:60)))`
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", p.Steps())
	}
	if p.Root.Kind != Sort {
		t.Fatal("root must be Sort")
	}
	join := p.Root.Children[0].Children[0]
	if join.Kind != HashJoin || len(join.Children) != 2 {
		t.Fatalf("join node %+v", join)
	}
	if join.Children[1].Kind != IndexScan || join.Children[1].Table != "catalog_sales" {
		t.Fatalf("index child %+v", join.Children[1])
	}
}

func TestParsePlanCaseInsensitive(t *testing.T) {
	p, err := ParsePlan("hashjoin:10:8(scan:a:1:1, SEQSCAN:b:2:2)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != HashJoin {
		t.Fatal("case-insensitive kind failed")
	}
}

func TestParsePlanDefaults(t *testing.T) {
	// Rows/width optional for operators.
	p, err := ParsePlan("Limit(HashAggregate:100:50(Scan:t:10:10))")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Rows != 1 || p.Root.Width != 8 {
		t.Fatalf("defaults wrong: %+v", p.Root)
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"Frobnicate:1:1",          // unknown operator
		"Scan",                    // scan without table
		"Scan::1:1",               // empty table
		"Scan:t:abc",              // bad number
		"HashJoin:1:1(Scan:a:1:1", // unclosed paren
		"Scan:a:1:1 garbage",      // trailing input
		"HashJoin:1:1",            // interior without children fails validation
	}
	for _, src := range cases {
		if _, err := ParsePlan(src); err == nil {
			t.Errorf("ParsePlan(%q): expected error", src)
		}
	}
}

func TestParsePlanRoundTripThroughString(t *testing.T) {
	src := "Sort:1000:40(HashJoin:2000:60(Scan:date_dim:365:141,Scan:web_sales:1e6:158))"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"Sort", "HashJoin", "SeqScan on date_dim", "SeqScan on web_sales"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered plan missing %q:\n%s", want, s)
		}
	}
}
