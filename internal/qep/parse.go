package qep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan builds a plan tree from a compact textual notation, so
// command-line users can describe ad-hoc queries without writing Go:
//
//	Sort:4e6:100(
//	  HashAggregate:4e6:100(
//	    HashJoin:20e6:110(
//	      Scan:item:2e4:294,
//	      Scan:catalog_sales:3e6:60)))
//
// Grammar:
//
//	node  := kind args? ( "(" node ("," node)* ")" )?
//	args  := ":" table? ":" rows ( ":" width )?   for Scan/Index
//	       | ":" rows ( ":" width )?              for operators
//
// Kind names match the plan operators case-insensitively ("Scan" and
// "SeqScan" are synonyms). Whitespace is insignificant.
func ParsePlan(src string) (*Plan, error) {
	p := &planParser{src: src}
	node, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("qep: trailing input at offset %d: %q", p.pos, p.rest())
	}
	plan := &Plan{Root: node}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

type planParser struct {
	src string
	pos int
}

func (p *planParser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "…"
	}
	return r
}

func (p *planParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// token reads a run of identifier characters (letters, digits, '_', '.',
// '+', '-', 'e' — enough for names and numbers).
func (p *planParser) token() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ':' || c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *planParser) eat(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *planParser) parseNode() (*Node, error) {
	p.skipSpace()
	name := p.token()
	if name == "" {
		return nil, fmt.Errorf("qep: expected operator at offset %d: %q", p.pos, p.rest())
	}
	kind, ok := kindByName(name)
	if !ok {
		return nil, fmt.Errorf("qep: unknown operator %q", name)
	}
	n := &Node{Kind: kind, Rows: 1, Width: 8}

	if kind.IsScan() {
		if !p.eat(':') {
			return nil, fmt.Errorf("qep: %s needs :table", name)
		}
		n.Table = p.token()
		if n.Table == "" {
			return nil, fmt.Errorf("qep: %s has empty table", name)
		}
	}
	if p.eat(':') {
		rows, err := parseNumber(p.token())
		if err != nil {
			return nil, fmt.Errorf("qep: %s rows: %w", name, err)
		}
		n.Rows = rows
	}
	if p.eat(':') {
		width, err := parseNumber(p.token())
		if err != nil {
			return nil, fmt.Errorf("qep: %s width: %w", name, err)
		}
		n.Width = int(width)
	}

	if p.eat('(') {
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			if p.eat(',') {
				continue
			}
			if p.eat(')') {
				break
			}
			return nil, fmt.Errorf("qep: expected ',' or ')' at offset %d: %q", p.pos, p.rest())
		}
	}
	return n, nil
}

func parseNumber(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// kindByName resolves an operator name case-insensitively; "Scan" is a
// synonym for SeqScan and "Index" for IndexScan.
func kindByName(name string) (Kind, bool) {
	switch strings.ToLower(name) {
	case "scan", "seqscan":
		return SeqScan, true
	case "index", "indexscan":
		return IndexScan, true
	}
	for k, n := range kindNames {
		if strings.EqualFold(n, name) {
			return Kind(k), true
		}
	}
	return 0, false
}
