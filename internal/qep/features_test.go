package qep

import (
	"strings"
	"testing"
)

func TestFeatureSpaceConstruction(t *testing.T) {
	p1 := &Plan{Root: Op(HashJoin, 10, 8,
		Scan("a", 100, 10),
		Scan("b", 200, 10))}
	p2 := &Plan{Root: Op(Sort, 5, 8, Scan("a", 50, 10))}
	fs := NewFeatureSpace([]*Plan{p1, p2})
	// Distinct steps: SeqScan:a, SeqScan:b, HashJoin, Sort.
	if fs.Slots() != 4 {
		t.Fatalf("slots = %d, want 4; keys %v", fs.Slots(), fs.Keys())
	}
	keys := fs.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys must be sorted for stable vectors")
		}
	}
}

func TestExtractCountsAndCardinalities(t *testing.T) {
	// Two scans of the same table must sum counts and cardinalities.
	p := &Plan{Root: Op(HashJoin, 10, 8,
		Scan("a", 100, 10),
		Scan("a", 50, 10))}
	fs := NewFeatureSpace([]*Plan{p})
	v := fs.Extract(p)
	if len(v) != 2*fs.Slots() {
		t.Fatalf("vector length %d, want %d", len(v), 2*fs.Slots())
	}
	// Find the SeqScan:a slot.
	slot := -1
	for i, k := range fs.Keys() {
		if k == "SeqScan:a" {
			slot = i
		}
	}
	if slot == -1 {
		t.Fatal("SeqScan:a not in space")
	}
	if v[2*slot] != 2 || v[2*slot+1] != 150 {
		t.Fatalf("SeqScan:a features (%g, %g), want (2, 150)", v[2*slot], v[2*slot+1])
	}
}

func TestExtractMixConcatenation(t *testing.T) {
	p1 := &Plan{Root: Scan("a", 100, 10)}
	p2 := &Plan{Root: Scan("b", 200, 10)}
	fs := NewFeatureSpace([]*Plan{p1, p2})
	v := fs.ExtractMix(p1, []*Plan{p2, p2})
	if len(v) != 4*fs.Slots() {
		t.Fatalf("mix vector length %d, want %d", len(v), 4*fs.Slots())
	}
	// First half = primary features; second half = summed concurrent.
	primary := fs.Extract(p1)
	for i := range primary {
		if v[i] != primary[i] {
			t.Fatal("primary half mismatch")
		}
	}
	// The two p2 instances must sum: SeqScan:b count 2, rows 400.
	slotB := -1
	for i, k := range fs.Keys() {
		if k == "SeqScan:b" {
			slotB = i
		}
	}
	off := 2 * fs.Slots()
	if v[off+2*slotB] != 2 || v[off+2*slotB+1] != 400 {
		t.Fatalf("concurrent features wrong: (%g, %g)", v[off+2*slotB], v[off+2*slotB+1])
	}
}

func TestUnseenSteps(t *testing.T) {
	known := &Plan{Root: Scan("a", 100, 10)}
	fs := NewFeatureSpace([]*Plan{known})
	novel := &Plan{Root: Op(WindowAgg, 10, 8, Scan("zebra", 5, 10))}
	unseen := fs.UnseenSteps(novel)
	if len(unseen) != 2 {
		t.Fatalf("unseen = %v, want 2 entries", unseen)
	}
	if unseen[0] != "SeqScan:zebra" || unseen[1] != "WindowAgg" {
		t.Fatalf("unseen = %v", unseen)
	}
	if len(fs.UnseenSteps(known)) != 0 {
		t.Fatal("known plan must have no unseen steps")
	}
	// Unknown steps are dropped from Extract rather than crashing.
	v := fs.Extract(novel)
	for _, x := range v {
		if x != 0 {
			t.Fatal("novel-only plan must extract to zeros")
		}
	}
}

func TestFeatureSpaceString(t *testing.T) {
	fs := NewFeatureSpace([]*Plan{{Root: Scan("a", 1, 1)}})
	s := fs.String()
	if !strings.Contains(s, "1 steps") || !strings.Contains(s, "2 primary") {
		t.Fatalf("String() = %q", s)
	}
}
