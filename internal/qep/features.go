package qep

import (
	"fmt"
	"sort"
)

// FeatureSpace is the global feature dictionary of Section 3: one slot per
// distinct execution step observed across all training plans, with
// sequential scans on different tables treated as distinct features. Each
// slot expands to two vector positions — occurrence count and summed
// cardinality estimate — so a space with n slots yields 2n "primary"
// features, and a primary+concurrent pair yields 4n.
type FeatureSpace struct {
	keys  []string
	index map[string]int
}

// featureKey maps a node to its dictionary key. Sequential scans are keyed
// per table; all other operators are keyed by kind only.
func featureKey(n *Node) string {
	if n.Kind == SeqScan {
		return "SeqScan:" + n.Table
	}
	return n.Kind.String()
}

// NewFeatureSpace builds the global dictionary from a set of plans.
// The key order is deterministic (sorted) so feature vectors are stable.
func NewFeatureSpace(plans []*Plan) *FeatureSpace {
	set := make(map[string]bool)
	for _, p := range plans {
		p.Walk(func(n *Node) { set[featureKey(n)] = true })
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	return &FeatureSpace{keys: keys, index: idx}
}

// Slots returns the number of dictionary entries n; vectors produced by
// Extract have length 2n.
func (fs *FeatureSpace) Slots() int { return len(fs.keys) }

// Keys returns the dictionary keys in vector order.
func (fs *FeatureSpace) Keys() []string { return append([]string(nil), fs.keys...) }

// Extract flattens a plan into a 2n-vector: for slot i, position 2i holds
// the occurrence count and position 2i+1 the summed cardinality estimate.
// Steps absent from the dictionary (possible when extracting an unseen
// template against a training-time space) are dropped, mirroring how the
// paper's learners are blind to genuinely novel operators.
func (fs *FeatureSpace) Extract(p *Plan) []float64 {
	v := make([]float64, 2*len(fs.keys))
	p.Walk(func(n *Node) {
		i, ok := fs.index[featureKey(n)]
		if !ok {
			return
		}
		v[2*i]++
		v[2*i+1] += n.Rows
	})
	return v
}

// ExtractMix builds the 4n concatenated vector of Section 3 for a primary
// query running with a set of concurrent plans: the primary's 2n features
// followed by the element-wise sum of the concurrent plans' features.
func (fs *FeatureSpace) ExtractMix(primary *Plan, concurrent []*Plan) []float64 {
	pv := fs.Extract(primary)
	cv := make([]float64, 2*len(fs.keys))
	for _, cp := range concurrent {
		for i, x := range fs.Extract(cp) {
			cv[i] += x
		}
	}
	return append(pv, cv...)
}

// UnseenSteps returns the dictionary keys of p that are missing from the
// space — the situation (templates whose features "do not appear in any
// other template") that forces the paper to shrink its ML workload from 25
// to 17 templates.
func (fs *FeatureSpace) UnseenSteps(p *Plan) []string {
	seen := make(map[string]bool)
	var out []string
	p.Walk(func(n *Node) {
		k := featureKey(n)
		if seen[k] {
			return
		}
		seen[k] = true
		if _, ok := fs.index[k]; !ok {
			out = append(out, k)
		}
	})
	sort.Strings(out)
	return out
}

// String summarizes the space.
func (fs *FeatureSpace) String() string {
	return fmt.Sprintf("FeatureSpace(%d steps, %d primary features, %d mix features)",
		len(fs.keys), 2*len(fs.keys), 4*len(fs.keys))
}
