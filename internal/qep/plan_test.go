package qep

import (
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{Root: Op(Sort, 1e6, 100,
		Op(HashJoin, 2e6, 120,
			Scan("date_dim", 365, 141),
			Op(HashJoin, 5e6, 110,
				Index("item", 1000, 294),
				Scan("store_sales", 10e6, 132))))}
}

func TestKindString(t *testing.T) {
	if SeqScan.String() != "SeqScan" || HashAggregate.String() != "HashAggregate" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind must render its number")
	}
	if !SeqScan.IsScan() || !IndexScan.IsScan() || HashJoin.IsScan() {
		t.Fatal("IsScan wrong")
	}
}

func TestWalkPreOrder(t *testing.T) {
	p := samplePlan()
	var kinds []Kind
	p.Walk(func(n *Node) { kinds = append(kinds, n.Kind) })
	want := []Kind{Sort, HashJoin, SeqScan, HashJoin, IndexScan, SeqScan}
	if len(kinds) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("node %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if len(p.Nodes()) != 6 {
		t.Fatal("Nodes count wrong")
	}
}

func TestScannedAndIndexedTables(t *testing.T) {
	p := samplePlan()
	scans := p.ScannedTables()
	if !scans["date_dim"] || !scans["store_sales"] || len(scans) != 2 {
		t.Fatalf("ScannedTables = %v", scans)
	}
	idx := p.IndexedTables()
	if !idx["item"] || len(idx) != 1 {
		t.Fatalf("IndexedTables = %v", idx)
	}
}

func TestStepsAndRecords(t *testing.T) {
	p := samplePlan()
	if p.Steps() != 6 {
		t.Fatalf("Steps = %d, want 6", p.Steps())
	}
	// Scans: 365 + 1000 + 10e6.
	if p.RecordsAccessed() != 365+1000+10e6 {
		t.Fatalf("RecordsAccessed = %g", p.RecordsAccessed())
	}
}

func TestValidateOK(t *testing.T) {
	if err := samplePlan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
	}{
		{"no root", &Plan{}},
		{"negative cardinality", &Plan{Root: Scan("t", -1, 10)}},
		{"scan without table", &Plan{Root: &Node{Kind: SeqScan, Rows: 1}}},
		{"scan with children", &Plan{Root: &Node{Kind: SeqScan, Table: "t", Rows: 1,
			Children: []*Node{Scan("u", 1, 1)}}}},
		{"interior without children", &Plan{Root: &Node{Kind: HashJoin, Rows: 1}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestString(t *testing.T) {
	s := samplePlan().String()
	for _, want := range []string{"Sort", "HashJoin", "SeqScan on store_sales", "IndexScan on item"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered plan missing %q:\n%s", want, s)
		}
	}
	// Children are indented deeper than parents.
	if strings.Index(s, "Sort") > strings.Index(s, "  HashJoin") {
		t.Fatal("indentation wrong")
	}
}
