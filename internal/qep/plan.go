// Package qep models query execution plans (QEPs): trees of relational
// operators with cardinality estimates, as a database optimizer would emit.
// Plans serve two consumers in this repository:
//
//   - the workload simulator, which derives a query's resource profile
//     (sequential/random I/O, CPU work, working-set size) from its plan via
//     a cost model (package tpcds), and
//   - the Section-3 machine-learning baselines, which flatten plans into the
//     paper's feature vectors (one count + summed-cardinality pair per
//     distinct step, with per-table sequential scans as distinct features).
package qep

import (
	"fmt"
	"strings"
)

// Kind identifies a plan operator.
type Kind int

// Plan operator kinds. The set mirrors the PostgreSQL executor nodes that
// appear in TPC-DS plans.
const (
	SeqScan Kind = iota
	IndexScan
	HashJoin
	MergeJoin
	NestedLoop
	Sort
	HashAggregate
	GroupAggregate
	Materialize
	Limit
	WindowAgg
	numKinds
)

var kindNames = [...]string{
	SeqScan:        "SeqScan",
	IndexScan:      "IndexScan",
	HashJoin:       "HashJoin",
	MergeJoin:      "MergeJoin",
	NestedLoop:     "NestedLoop",
	Sort:           "Sort",
	HashAggregate:  "HashAggregate",
	GroupAggregate: "GroupAggregate",
	Materialize:    "Materialize",
	Limit:          "Limit",
	WindowAgg:      "WindowAgg",
}

// String returns the operator name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// NumKinds returns the number of distinct operator kinds.
func NumKinds() int { return int(numKinds) }

// IsScan reports whether the kind reads base-table data.
func (k Kind) IsScan() bool { return k == SeqScan || k == IndexScan }

// Node is one operator in a plan tree.
type Node struct {
	Kind     Kind
	Table    string  // base table for scan nodes, "" otherwise
	Rows     float64 // optimizer cardinality estimate (output rows)
	Width    int     // estimated bytes per output row
	Children []*Node
}

// Plan is a complete query execution plan for one template.
type Plan struct {
	Root *Node
}

// Walk visits every node in the plan in pre-order.
func (p *Plan) Walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
}

// Nodes returns all nodes in pre-order.
func (p *Plan) Nodes() []*Node {
	var out []*Node
	p.Walk(func(n *Node) { out = append(out, n) })
	return out
}

// ScannedTables returns the set of tables read by sequential scans in the
// plan. CQI's shared-scan terms (Eqs. 2–3) are computed over this set.
func (p *Plan) ScannedTables() map[string]bool {
	out := make(map[string]bool)
	p.Walk(func(n *Node) {
		if n.Kind == SeqScan && n.Table != "" {
			out[n.Table] = true
		}
	})
	return out
}

// IndexedTables returns the set of tables accessed by index (random-I/O)
// scans.
func (p *Plan) IndexedTables() map[string]bool {
	out := make(map[string]bool)
	p.Walk(func(n *Node) {
		if n.Kind == IndexScan && n.Table != "" {
			out[n.Table] = true
		}
	})
	return out
}

// Steps returns the number of operators in the plan (the "query plan steps"
// feature of Table 3).
func (p *Plan) Steps() int {
	n := 0
	p.Walk(func(*Node) { n++ })
	return n
}

// RecordsAccessed sums the cardinality estimates of all scan nodes (the
// "records accessed" feature of Table 3).
func (p *Plan) RecordsAccessed() float64 {
	var s float64
	p.Walk(func(n *Node) {
		if n.Kind.IsScan() {
			s += n.Rows
		}
	})
	return s
}

// Validate checks structural invariants: non-negative cardinalities, scans
// are leaves and carry a table, non-scan interior nodes have children.
func (p *Plan) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("qep: plan has no root")
	}
	var err error
	p.Walk(func(n *Node) {
		if err != nil {
			return
		}
		if n.Rows < 0 {
			err = fmt.Errorf("qep: %s has negative cardinality %g", n.Kind, n.Rows)
			return
		}
		if n.Kind.IsScan() {
			if n.Table == "" {
				err = fmt.Errorf("qep: %s has no table", n.Kind)
				return
			}
			if len(n.Children) != 0 {
				err = fmt.Errorf("qep: scan of %s has children", n.Table)
				return
			}
			return
		}
		if len(n.Children) == 0 {
			err = fmt.Errorf("qep: interior node %s has no children", n.Kind)
		}
	})
	return err
}

// String renders the plan as an indented tree, EXPLAIN-style.
func (p *Plan) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		if n.Table != "" {
			fmt.Fprintf(&b, "%s on %s (rows=%.0f width=%d)\n", n.Kind, n.Table, n.Rows, n.Width)
		} else {
			fmt.Fprintf(&b, "%s (rows=%.0f width=%d)\n", n.Kind, n.Rows, n.Width)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}

// Convenience constructors keep the template catalog readable.

// Scan builds a sequential scan leaf.
func Scan(table string, rows float64, width int) *Node {
	return &Node{Kind: SeqScan, Table: table, Rows: rows, Width: width}
}

// Index builds an index scan leaf.
func Index(table string, rows float64, width int) *Node {
	return &Node{Kind: IndexScan, Table: table, Rows: rows, Width: width}
}

// Op builds an interior operator node.
func Op(kind Kind, rows float64, width int, children ...*Node) *Node {
	return &Node{Kind: kind, Rows: rows, Width: width, Children: children}
}
