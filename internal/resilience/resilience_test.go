package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func noSleep(p RetryPolicy) RetryPolicy {
	p.Sleep = func(time.Duration) {}
	return p
}

func TestTaxonomyClassification(t *testing.T) {
	base := errors.New("io timeout")
	cases := []struct {
		err       error
		retryable bool
		sentinel  error
	}{
		{Transient(base), true, ErrTransient},
		{Permanent(base), false, ErrPermanent},
		{Corrupt(base), true, ErrCorruptMeasurement},
		{Corruptf("latency %g", -1.0), true, ErrCorruptMeasurement},
		{base, true, nil},                      // unclassified errors retry
		{context.Canceled, false, nil},         // cancellation never retries
		{context.DeadlineExceeded, false, nil}, // timeouts never retry
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.retryable)
		}
		if c.sentinel != nil && !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v must wrap %v", c.err, c.sentinel)
		}
	}
	// Wrapping preserves the underlying error too.
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient must keep the cause")
	}
	if Retryable(nil) {
		t.Fatal("nil error is not retryable")
	}
}

func TestRetryRescuesTransient(t *testing.T) {
	p := noSleep(Default())
	fails := 2
	attempts, err := p.Do(context.Background(), "t", func() error {
		if fails > 0 {
			fails--
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRetryFailsFastOnPermanent(t *testing.T) {
	p := noSleep(Default())
	calls := 0
	attempts, err := p.Do(context.Background(), "p", func() error {
		calls++
		return Permanent(errors.New("gone"))
	})
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	if calls != 1 || attempts != 1 {
		t.Fatalf("calls=%d attempts=%d, want 1/1", calls, attempts)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	p := noSleep(Default())
	p.MaxAttempts = 3
	calls := 0
	attempts, err := p.Do(context.Background(), "site/x", func() error {
		calls++
		return Transient(errors.New("still down"))
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	if calls != 3 || attempts != 3 {
		t.Fatalf("calls=%d attempts=%d, want 3/3", calls, attempts)
	}
	// The error names the site and the budget.
	if want := "site/x: attempt 3/3"; !errors.Is(err, ErrTransient) || !containsStr(err.Error(), want) {
		t.Fatalf("error %q must contain %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := noSleep(Default())
	calls := 0
	_, err := p.Do(ctx, "c", func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatal("cancelled context must prevent the first attempt")
	}

	// Cancellation during backoff stops the loop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	p2 := Default()
	p2.Sleep = func(time.Duration) { cancel2() }
	_, err = p2.Do(ctx2, "c2", func() error { return Transient(errors.New("x")) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled after backoff cancel", err)
	}
}

func TestBackoffGrowthAndJitter(t *testing.T) {
	p := Default()
	p.JitterFrac = 0
	if d1, d2 := p.Delay("s", 1), p.Delay("s", 2); d2 != 2*d1 {
		t.Fatalf("delay must double: %v then %v", d1, d2)
	}
	if d := p.Delay("s", 50); d != p.MaxDelay {
		t.Fatalf("delay %v must cap at %v", d, p.MaxDelay)
	}

	// Jitter is deterministic per (seed, site, retry) and bounded.
	p = Default()
	for retry := 1; retry <= 5; retry++ {
		a, b := p.Delay("s", retry), p.Delay("s", retry)
		if a != b {
			t.Fatalf("jittered delay must be deterministic: %v vs %v", a, b)
		}
	}
	base := Default()
	base.JitterFrac = 0
	for retry := 1; retry <= 4; retry++ {
		want := float64(base.Delay("s", retry))
		got := float64(p.Delay("s", retry))
		if got < want*(1-p.JitterFrac)-1 || got > want*(1+p.JitterFrac)+1 {
			t.Fatalf("retry %d: jittered %v outside ±%.0f%% of %v", retry, time.Duration(got), 100*p.JitterFrac, time.Duration(want))
		}
	}
	// Different sites decorrelate.
	if p.Delay("a", 1) == p.Delay("b", 1) {
		t.Fatal("different sites should jitter differently")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, TransientRate: 0.3, CorruptRate: 0.1, Sleep: func(time.Duration) {}}
	schedule := func() []FaultKind {
		in := NewInjector(cfg)
		var out []FaultKind
		for site := 0; site < 20; site++ {
			for attempt := 0; attempt < 3; attempt++ {
				out = append(out, in.Decide(fmt.Sprintf("site/%d", site)))
			}
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical injectors: %v vs %v", i, a[i], b[i])
		}
	}
	var faulted bool
	for _, k := range a {
		if k != FaultNone {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("30%+10% rates over 60 calls must inject something")
	}

	// A different seed produces a different schedule.
	cfg2 := cfg
	cfg2.Seed = 8
	in2 := NewInjector(cfg2)
	var differs bool
	for i, site := 0, 0; site < 20; site++ {
		for attempt := 0; attempt < 3; attempt, i = attempt+1, i+1 {
			if in2.Decide(fmt.Sprintf("site/%d", site)) != a[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds must change the fault schedule")
	}
}

func TestInjectorRatesAndStats(t *testing.T) {
	in := NewInjector(FaultConfig{Seed: 3, TransientRate: 0.5, Sleep: func(time.Duration) {}})
	const n = 2000
	for i := 0; i < n; i++ {
		in.Decide(fmt.Sprintf("s/%d", i))
	}
	st := in.Stats()
	if st.Calls != n {
		t.Fatalf("calls %d, want %d", st.Calls, n)
	}
	frac := float64(st.Transient) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("transient fraction %.3f far from configured 0.5", frac)
	}
	if st.Injected() != st.Transient {
		t.Fatalf("only transient faults configured, got %+v", st)
	}
}

func TestInjectorPermanentSites(t *testing.T) {
	in := NewInjector(FaultConfig{Seed: 1, PermanentSites: []string{"isolated/26", "mix/"}, Sleep: func(time.Duration) {}})
	for _, site := range []string{"isolated/26", "mix/2/0", "mix/3/4"} {
		if k := in.Decide(site); k != FaultPermanent {
			t.Fatalf("site %s: %v, want permanent", site, k)
		}
	}
	if k := in.Decide("isolated/2"); k != FaultPermanent {
		// isolated/2 is not a configured prefix match of isolated/26.
		_ = k
	} else {
		t.Fatal("isolated/2 must not match the isolated/26 prefix")
	}
	if err := FaultPermanent.Err("isolated/26"); !errors.Is(err, ErrPermanent) {
		t.Fatal("FaultKind.Err must map to the taxonomy")
	}
	if err := FaultNone.Err("x"); err != nil {
		t.Fatal("FaultNone has no error")
	}
}

func TestSiteMatchesSegmentBoundary(t *testing.T) {
	cases := []struct {
		site, pattern string
		want          bool
	}{
		{"template/2", "template/2", true},
		{"template/2/run0", "template/2", true},
		{"template/22", "template/2", false}, // ID 2 must not select ID 22
		{"template/22", "template/22", true},
		{"mix/2/0", "mix/", true},
		{"mix", "mix/", false},
		{"isolated/260", "isolated/26", false},
	}
	for _, c := range cases {
		if got := siteMatches(c.site, c.pattern); got != c.want {
			t.Errorf("siteMatches(%q, %q) = %v, want %v", c.site, c.pattern, got, c.want)
		}
	}
}

func TestInjectorStalls(t *testing.T) {
	var slept []time.Duration
	in := NewInjector(FaultConfig{
		Seed:     1,
		HangRate: 1, HangDuration: 123 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if k := in.Decide("s"); k != FaultHang {
		t.Fatalf("kind %v, want hang", k)
	}
	if len(slept) != 1 || slept[0] != 123*time.Millisecond {
		t.Fatalf("slept %v, want one 123ms stall", slept)
	}
}

// BenchmarkRetryDoClean measures the overhead the retry wrapper adds to a
// successful measurement — the hot path of every fault-free campaign.
func BenchmarkRetryDoClean(b *testing.B) {
	p := Default()
	ctx := context.Background()
	fn := func() error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Do(ctx, "bench", fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectorDecide measures the per-call cost of fault injection.
func BenchmarkInjectorDecide(b *testing.B) {
	in := NewInjector(FaultConfig{Seed: 1, TransientRate: 0.1, Sleep: func(time.Duration) {}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Decide("bench/site")
	}
}

// TestOnRetryHook: the observability hook fires once per backoff with
// the site, retry ordinal, scheduled delay, and the failing error — and
// never fires on the final (successful or exhausted) attempt.
func TestOnRetryHook(t *testing.T) {
	type call struct {
		site  string
		retry int
		delay time.Duration
		err   error
	}
	var calls []call
	p := noSleep(Default())
	p.OnRetry = func(site string, retry int, delay time.Duration, err error) {
		calls = append(calls, call{site, retry, delay, err})
	}
	fails := 2
	cause := Transient(errors.New("flaky"))
	attempts, err := p.Do(context.Background(), "site/x", func() error {
		if fails > 0 {
			fails--
			return cause
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
	if len(calls) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2 (one per backoff)", len(calls))
	}
	for i, c := range calls {
		if c.site != "site/x" || c.retry != i+1 || !errors.Is(c.err, cause) {
			t.Errorf("call %d: %+v", i, c)
		}
		if c.delay != p.Delay("site/x", i+1) {
			t.Errorf("call %d: delay %v diverges from the schedule's %v", i, c.delay, p.Delay("site/x", i+1))
		}
	}

	// The hook must not fire when the first attempt succeeds.
	calls = nil
	if _, err := p.Do(context.Background(), "ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 0 {
		t.Fatalf("OnRetry fired %d times on success, want 0", len(calls))
	}

	// A non-retryable error never reaches the hook either.
	calls = nil
	if _, err := p.Do(context.Background(), "perm", func() error {
		return Permanent(errors.New("gone"))
	}); err == nil {
		t.Fatal("permanent error must surface")
	}
	if len(calls) != 0 {
		t.Fatalf("OnRetry fired %d times on a permanent failure, want 0", len(calls))
	}
}
