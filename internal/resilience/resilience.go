// Package resilience is the fault-tolerance layer under Contender's
// training pipeline. The paper's premise is that training is expensive — a
// sampling campaign linear in templates — and real measurement substrates
// are noisy: queries time out, connections drop, procfs counters glitch.
// This package provides the three pieces the trainer composes:
//
//   - an error taxonomy (transient / permanent / corrupt-measurement) that
//     callers test with errors.Is;
//   - RetryPolicy, exponential backoff with deterministic jitter applied
//     around every measurement; and
//   - a seed-deterministic fault Injector (faults.go) that simulates a
//     flaky substrate for tests and the ext-chaos experiment.
//
// The package is substrate-agnostic and imports nothing from the rest of
// the module, so both the public facade and internal/experiments can use
// it without cycles.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel classes of measurement failure. Wrap an underlying error with
// Transient/Permanent/Corrupt (or %w the sentinel directly) and test with
// errors.Is.
var (
	// ErrTransient marks a failure worth retrying: the same measurement is
	// expected to succeed on a later attempt (timeout, dropped connection,
	// spurious I/O error).
	ErrTransient = errors.New("transient measurement failure")
	// ErrPermanent marks a failure retrying cannot fix (template removed,
	// permission revoked, malformed plan). The retry loop fails fast and the
	// trainer quarantines the affected unit of work.
	ErrPermanent = errors.New("permanent measurement failure")
	// ErrCorruptMeasurement marks a call that returned, but with values no
	// valid measurement can produce: NaN or negative latencies, or a
	// wrong-length mix result. Corrupt measurements are discarded and
	// resampled under the retry budget.
	ErrCorruptMeasurement = errors.New("corrupt measurement")
)

// Transient wraps err as a retryable failure.
func Transient(err error) error {
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// Permanent wraps err as a non-retryable failure.
func Permanent(err error) error {
	return fmt.Errorf("%w: %w", ErrPermanent, err)
}

// Corrupt wraps err as a corrupt-measurement failure.
func Corrupt(err error) error {
	return fmt.Errorf("%w: %w", ErrCorruptMeasurement, err)
}

// Corruptf builds a corrupt-measurement error from a format string.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptMeasurement, fmt.Sprintf(format, args...))
}

// Retryable reports whether a retry can plausibly fix err. Permanent
// failures and context cancellation are not retryable; transient and
// corrupt failures are, and so are unclassified errors — a backend that
// does not speak the taxonomy still benefits from retries, and a persistent
// unclassified failure exhausts the budget and quarantines like a permanent
// one.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// RetryPolicy is an exponential-backoff retry schedule with deterministic
// jitter. The zero value is NOT usable; start from Default() and override
// fields. Policies are value types and safe to copy; one policy value may
// be shared by concurrent Do calls.
type RetryPolicy struct {
	// MaxAttempts caps the total number of attempts, including the first
	// (default 4). Values < 1 behave as 1: no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries (default 2).
	Multiplier float64
	// JitterFrac perturbs each delay by a uniform factor in
	// [1-JitterFrac, 1+JitterFrac] (default 0.25). Jitter is derived
	// deterministically from Seed and the call site, so a rerun of the same
	// campaign waits the same schedule.
	JitterFrac float64
	// Seed drives the deterministic jitter (default 1).
	Seed int64
	// Sleep replaces the delay implementation; nil uses a context-aware
	// timer wait. Tests and simulations install a no-op.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, is invoked before each backoff wait with the
	// call site, the 1-based retry ordinal, the computed delay, and the
	// error that triggered the retry. It exists so observability layers can
	// count retries and backoff time without this package importing them;
	// it must not panic and must be safe for concurrent use when the
	// policy is shared across goroutines.
	OnRetry func(site string, retry int, delay time.Duration, err error)
}

// Default returns the default retry schedule: 4 attempts, 50ms base delay
// doubling to a 2s cap, ±25% deterministic jitter.
func Default() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.25,
		Seed:        1,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := Default()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Delay returns the backoff before retry number retry (1-based) of the
// given call site: BaseDelay·Multiplier^(retry-1), capped at MaxDelay,
// jittered deterministically by (Seed, site, retry).
func (p RetryPolicy) Delay(site string, retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 {
		u := unitFloat(hash64(p.Seed, fmt.Sprintf("%s#%d", site, retry)))
		d *= 1 + p.JitterFrac*(2*u-1)
	}
	return time.Duration(d)
}

// Do runs fn under the policy: it retries retryable failures (transient,
// corrupt, unclassified) with backoff and fails fast on permanent failures
// and context cancellation. The site string names the unit of work — it
// keys the deterministic jitter and appears in the returned error. Do
// returns the number of attempts made alongside the terminal error (nil on
// success); attempts > 1 with a nil error means retries rescued the call.
func (p RetryPolicy) Do(ctx context.Context, site string, fn func() error) (attempts int, err error) {
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return attempt - 1, cerr
		}
		err = fn()
		if err == nil {
			return attempt, nil
		}
		if !Retryable(err) || attempt >= p.MaxAttempts {
			return attempt, fmt.Errorf("%s: attempt %d/%d: %w", site, attempt, p.MaxAttempts, err)
		}
		delay := p.Delay(site, attempt)
		if p.OnRetry != nil {
			p.OnRetry(site, attempt, delay, err)
		}
		if werr := p.wait(ctx, delay); werr != nil {
			return attempt, werr
		}
	}
}

// wait sleeps for d or until the context is cancelled.
func (p RetryPolicy) wait(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hash64 mixes a seed and a key into a 64-bit value (FNV-1a over the key,
// finalized SplitMix64-style with the seed) — the same construction
// internal/sim uses for per-task engine seeds, duplicated here so the
// package stays dependency-free.
func hash64(seed int64, key string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := h + uint64(seed)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// unitFloat maps a 64-bit hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
