package resilience

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Deterministic fault injection. An Injector simulates a flaky measurement
// substrate: each call site asks Decide what happens to its next attempt,
// and the answer is a pure function of (seed, site, attempt number). Two
// runs with the same seed see the same fault schedule — which is what lets
// the chaos tests assert that a campaign under transient faults produces a
// predictor byte-identical to a clean run.

// FaultKind is one injected failure mode.
type FaultKind int

const (
	// FaultNone: the call proceeds normally.
	FaultNone FaultKind = iota
	// FaultTransient: the call fails with an ErrTransient error without
	// reaching the substrate; a retry will reach it.
	FaultTransient
	// FaultPermanent: the call fails with an ErrPermanent error on every
	// attempt.
	FaultPermanent
	// FaultCorrupt: the call returns a value no valid measurement can
	// produce (NaN, negative, wrong length) without reaching the substrate.
	FaultCorrupt
	// FaultHang: the call stalls for HangDuration before proceeding.
	FaultHang
	// FaultSpike: the call stalls for SpikeDuration before proceeding — a
	// latency spike rather than a hard hang.
	FaultSpike
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultCorrupt:
		return "corrupt"
	case FaultHang:
		return "hang"
	case FaultSpike:
		return "spike"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultConfig parameterizes an Injector. Rates are probabilities in [0, 1]
// evaluated independently per attempt; they must sum to at most 1.
type FaultConfig struct {
	// Seed drives the deterministic fault schedule (default 1).
	Seed int64
	// TransientRate injects retryable errors.
	TransientRate float64
	// CorruptRate injects corrupt measurement values.
	CorruptRate float64
	// HangRate stalls calls for HangDuration (default 50ms).
	HangRate     float64
	HangDuration time.Duration
	// SpikeRate stalls calls for SpikeDuration (default 5ms).
	SpikeRate     float64
	SpikeDuration time.Duration
	// PermanentSites lists call sites that fail permanently on every
	// attempt. An entry matches its exact site or any site under it at a
	// "/" boundary: "isolated/26" kills one template's isolated runs
	// (without touching "isolated/260"), "mix/" kills every steady-state
	// mix.
	PermanentSites []string
	// Sleep replaces the stall implementation for hangs and spikes; nil
	// uses time.Sleep.
	Sleep func(time.Duration)
}

// FaultStats counts what an Injector actually injected.
type FaultStats struct {
	Calls     int
	Transient int
	Permanent int
	Corrupt   int
	Hangs     int
	Spikes    int
}

// Injected returns the total number of faulted calls.
func (s FaultStats) Injected() int {
	return s.Transient + s.Permanent + s.Corrupt + s.Hangs + s.Spikes
}

// Injector decides, deterministically per (site, attempt), whether a call
// is faulted. Safe for concurrent use.
type Injector struct {
	cfg FaultConfig

	mu       sync.Mutex
	attempts map[string]int
	stats    FaultStats
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg FaultConfig) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HangDuration <= 0 {
		cfg.HangDuration = 50 * time.Millisecond
	}
	if cfg.SpikeDuration <= 0 {
		cfg.SpikeDuration = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg, attempts: make(map[string]int)}
}

// Decide returns the fault injected into the next attempt at the given
// call site, advancing the site's attempt counter. Stall faults (hang,
// spike) sleep here and then report themselves; the caller proceeds with
// the real call afterwards.
func (in *Injector) Decide(site string) FaultKind {
	in.mu.Lock()
	attempt := in.attempts[site]
	in.attempts[site] = attempt + 1
	in.stats.Calls++
	kind := in.decide(site, attempt)
	switch kind {
	case FaultTransient:
		in.stats.Transient++
	case FaultPermanent:
		in.stats.Permanent++
	case FaultCorrupt:
		in.stats.Corrupt++
	case FaultHang:
		in.stats.Hangs++
	case FaultSpike:
		in.stats.Spikes++
	}
	sleep := in.cfg.Sleep
	in.mu.Unlock()

	if sleep == nil {
		sleep = time.Sleep
	}
	switch kind {
	case FaultHang:
		sleep(in.cfg.HangDuration)
	case FaultSpike:
		sleep(in.cfg.SpikeDuration)
	}
	return kind
}

// decide is the pure decision function; the caller holds the mutex.
func (in *Injector) decide(site string, attempt int) FaultKind {
	for _, p := range in.cfg.PermanentSites {
		if siteMatches(site, p) {
			return FaultPermanent
		}
	}
	u := unitFloat(hash64(in.cfg.Seed, fmt.Sprintf("%s@%d", site, attempt)))
	cut := in.cfg.TransientRate
	if u < cut {
		return FaultTransient
	}
	if cut += in.cfg.CorruptRate; u < cut {
		return FaultCorrupt
	}
	if cut += in.cfg.HangRate; u < cut {
		return FaultHang
	}
	if cut += in.cfg.SpikeRate; u < cut {
		return FaultSpike
	}
	return FaultNone
}

// siteMatches reports whether pattern selects site: exact match, or a
// prefix ending at a "/" segment boundary — so "template/2" selects
// "template/2" and "template/2/run0" but never "template/22".
func siteMatches(site, pattern string) bool {
	if !strings.HasPrefix(site, pattern) {
		return false
	}
	return len(site) == len(pattern) ||
		strings.HasSuffix(pattern, "/") ||
		site[len(pattern)] == '/'
}

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Err converts a decided fault into the matching taxonomy error (nil for
// non-error faults).
func (k FaultKind) Err(site string) error {
	switch k {
	case FaultTransient:
		return Transient(fmt.Errorf("injected fault at %s", site))
	case FaultPermanent:
		return Permanent(fmt.Errorf("injected fault at %s", site))
	case FaultCorrupt:
		return Corruptf("injected corrupt value at %s", site)
	}
	return nil
}
