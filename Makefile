GO ?= go

.PHONY: all build test race vet staticcheck bench-guard clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bin/contender-vet: FORCE
	$(GO) build -o $@ ./cmd/contender-vet

# Run the invariant suite both standalone and through go vet's vettool
# protocol (the two paths exercise different loaders).
vet: bin/contender-vet
	$(GO) vet ./...
	./bin/contender-vet ./...
	$(GO) vet -vettool=./bin/contender-vet ./...

# Requires the staticcheck binary (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest). Configuration
# lives in staticcheck.conf.
staticcheck:
	staticcheck ./...

bench-guard:
	$(GO) test -run TestServingPathDoesNotAllocate -v ./internal/core/

clean:
	rm -rf bin

FORCE:
