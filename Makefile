GO ?= go

.PHONY: all build test race vet vet-v2 fuzz-smoke wire-lock staticcheck bench-guard selfheal-golden blame-golden serve-smoke clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bin/contender-vet: FORCE
	$(GO) build -o $@ ./cmd/contender-vet

# Run the invariant suite both standalone and through go vet's vettool
# protocol (the two paths exercise different loaders).
vet: bin/contender-vet
	$(GO) vet ./...
	./bin/contender-vet ./...
	$(GO) vet -vettool=./bin/contender-vet ./...

# The expanded invariant suite plus the wire-contract freshness gate:
# run every analyzer, then regenerate the lock and fail if the bytes
# differ from the checked-in internal/serve/wire.lock — a drifted lock
# means the wire schema changed without a conscious `make wire-lock`.
vet-v2: bin/contender-vet
	./bin/contender-vet ./...
	@tmp=$$(mktemp); cp internal/serve/wire.lock $$tmp; \
	./bin/contender-vet -write-wire-lock >/dev/null; \
	if ! cmp -s internal/serve/wire.lock $$tmp; then \
		mv $$tmp internal/serve/wire.lock; \
		echo "internal/serve/wire.lock is stale: run 'make wire-lock' and commit the result" >&2; \
		exit 1; \
	fi; \
	rm -f $$tmp; echo "wire.lock is in sync"

# Thirty-second native fuzz smoke over the binary frame decoder, on top
# of the checked-in seed corpus in internal/serve/testdata/fuzz.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s -run '^$$' ./internal/serve/

# Regenerate the wire-contract lock after a deliberate schema change.
# Breaking changes (removed/retyped v1 surface) must bump serve.Version
# first; wirecompat fails the build otherwise.
wire-lock: bin/contender-vet
	./bin/contender-vet -write-wire-lock

# Requires the staticcheck binary (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest). Configuration
# lives in staticcheck.conf.
staticcheck:
	staticcheck ./...

# Every serving benchmark row must report 0 allocs/op. Rows are matched
# exactly (modulo the -GOMAXPROCS suffix) so one row's budget never
# silently applies to another; the in-process complement is
# TestServingPathDoesNotAllocate, the static one the hotpathalloc
# analyzer.
BENCH_GUARD_ROWS = \
	BenchmarkPredictKnown \
	BenchmarkPredictExplain \
	BenchmarkPredictBatch/mixes=4 \
	BenchmarkPredictBatch/mixes=16 \
	BenchmarkPredictBatch/mixes=64 \
	BenchmarkPredictKnownFeedback \
	BenchmarkShardedPredict \
	BenchmarkShardedObserve

bench-guard:
	$(GO) test -run TestServingPathDoesNotAllocate -v ./internal/core/
	@out=$$($(GO) test -run XXX -bench 'BenchmarkPredictKnown$$|BenchmarkPredictExplain$$|BenchmarkPredictBatch$$|BenchmarkPredictKnownFeedback$$|BenchmarkShardedPredict$$|BenchmarkShardedObserve$$' -benchtime 100x .); \
	echo "$$out"; \
	for b in $(BENCH_GUARD_ROWS); do \
		allocs=$$(echo "$$out" | awk -v b="$$b" '$$1 ~ ("^" b "(-[0-9]+)?$$") && $$NF == "allocs/op" {print $$(NF-1)}'); \
		if [ -z "$$allocs" ] || [ "$$allocs" != "0" ]; then \
			echo "$$b reports $${allocs:-?} allocs/op; must be 0" >&2; \
			exit 1; \
		fi; \
	done

# The self-healing lifecycle replay must render byte-identically at any
# collection worker count (mirrors the CI selfheal-golden job).
selfheal-golden:
	$(GO) run ./cmd/contender-bench -quick -mpls 2,3 -experiments ext-selfheal -workers 1 > /tmp/selfheal-w1.txt
	$(GO) run ./cmd/contender-bench -quick -mpls 2,3 -experiments ext-selfheal -workers 4 > /tmp/selfheal-w4.txt
	diff -u /tmp/selfheal-w1.txt /tmp/selfheal-w4.txt
	rm -f /tmp/selfheal-w1.txt /tmp/selfheal-w4.txt

# The blame-attribution replay decomposes every collected mix, hard-fails
# unless each decomposition reproduces PredictKnown bit-for-bit, and must
# render byte-identically at any collection worker count (mirrors the CI
# blame-golden job).
blame-golden:
	$(GO) run ./cmd/contender-bench -quick -mpls 2,3 -experiments ext-blame -workers 1 > /tmp/blame-w1.txt
	$(GO) run ./cmd/contender-bench -quick -mpls 2,3 -experiments ext-blame -workers 4 > /tmp/blame-w4.txt
	diff -u /tmp/blame-w1.txt /tmp/blame-w4.txt
	rm -f /tmp/blame-w1.txt /tmp/blame-w4.txt

# The serving layer's end-to-end gate: drive both protocol fronts with
# the deterministic load generator, require binary/HTTP payload parity
# and a conservative throughput floor, and require the checksum to
# reproduce across two runs (mirrors the CI serve-smoke job).
serve-smoke:
	$(GO) run ./cmd/contender-serve -quick -loadgen -loadgen-ops 500 \
		-min-rate 100000 -bench-out /tmp/serve-smoke-1.json
	$(GO) run ./cmd/contender-serve -quick -loadgen -loadgen-ops 500 \
		-min-rate 100000 -bench-out /tmp/serve-smoke-2.json
	@c1=$$(grep '"checksum"' /tmp/serve-smoke-1.json); \
	c2=$$(grep '"checksum"' /tmp/serve-smoke-2.json); \
	if [ "$$c1" != "$$c2" ]; then \
		echo "serve-smoke: checksum not reproducible: $$c1 vs $$c2" >&2; \
		exit 1; \
	fi; \
	echo "serve-smoke: reproducible $$c1"
	rm -f /tmp/serve-smoke-1.json /tmp/serve-smoke-2.json

clean:
	rm -rf bin

FORCE:
