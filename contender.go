// Package contender is a reproduction of "Contender: A Resource Modeling
// Approach for Concurrent Query Performance Prediction" (Duggan,
// Papaemmanouil, Cetintemel, Upfal — EDBT 2014): a framework that predicts
// the latency of analytical queries executing under concurrency, for both
// known and never-before-seen query templates, with only linear (or
// constant) sampling requirements.
//
// The package bundles everything the paper depends on, implemented from
// scratch on the standard library:
//
//   - a resource-contention simulator of a single database host (I/O
//     bandwidth sharing, shared fact-table scans, memory pressure, the
//     "spoiler" worst-case antagonist) standing in for the paper's
//     PostgreSQL/TPC-DS testbed;
//   - a TPC-DS-like workload of 25 query templates defined as query
//     execution plans;
//   - the Contender models: Concurrent Query Intensity (CQI), performance
//     continuums, Query Sensitivity (QS) models, spoiler-latency
//     prediction;
//   - the Section-3 machine-learning baselines (KCCA, SVM); and
//   - drivers that regenerate every table and figure of the evaluation.
//
// # Quick start
//
//	wb, err := contender.NewWorkbench(contender.QuickSampling())
//	if err != nil { ... }
//	pred, err := wb.Train()
//	if err != nil { ... }
//	// Predict TPC-DS Q71's latency when it runs with Q2 and Q22:
//	latency, err := pred.PredictKnown(71, []int{2, 22})
//
// For ad-hoc templates that were never sampled under concurrency, see
// Workbench.ProfileTemplate and Predictor.PredictNew — they reproduce the
// paper's constant-time-sampling pipeline (Figure 5).
package contender

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/obs"
	"contender/internal/qep"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Public aliases: the facade re-exports the framework's core types so
// downstream users never need the internal packages.
type (
	// TemplateStats holds a template's isolated-execution observables —
	// all Contender needs to know about a query before predicting it.
	TemplateStats = core.TemplateStats
	// QSModel is the per-template Query Sensitivity model c = µ·r + b.
	QSModel = core.QSModel
	// Continuum is a template's [isolated, spoiler] performance range.
	Continuum = core.Continuum
	// Observation is one steady-state measurement of a primary in a mix.
	Observation = core.Observation
	// SpoilerGrowth models spoiler latency as linear in the MPL.
	SpoilerGrowth = core.SpoilerGrowth
	// Plan is a query execution plan tree.
	Plan = qep.Plan
	// PlanNode is one operator of a plan.
	PlanNode = qep.Node
	// HostConfig describes the simulated database host.
	HostConfig = sim.Config
	// QueryResult is one completed (simulated) query execution.
	QueryResult = sim.Result
)

// Plan-building helpers for ad-hoc templates, mirroring the internal
// constructors.
var (
	// Scan builds a sequential scan leaf.
	Scan = qep.Scan
	// Index builds an index (random I/O) scan leaf.
	Index = qep.Index
	// Op builds an interior plan operator.
	Op = qep.Op
)

// Plan operator kinds for use with Op.
const (
	SeqScan        = qep.SeqScan
	IndexScan      = qep.IndexScan
	HashJoin       = qep.HashJoin
	MergeJoin      = qep.MergeJoin
	NestedLoop     = qep.NestedLoop
	Sort           = qep.Sort
	HashAggregate  = qep.HashAggregate
	GroupAggregate = qep.GroupAggregate
	Materialize    = qep.Materialize
	Limit          = qep.Limit
	WindowAgg      = qep.WindowAgg
)

// ParsePlan builds a query plan from the compact textual notation, e.g.
//
//	Sort:4e6:100(HashJoin:20e6:110(Scan:item:2e4:294, Scan:catalog_sales:3e6:60))
//
// so ad-hoc templates can be described on a command line or in config
// files. See internal/qep.ParsePlan for the grammar.
var ParsePlan = qep.ParsePlan

// DefaultHost returns the default simulated host (8 GB RAM, 8 cores,
// ~100 MB/s sequential disk), comparable to the paper's testbed.
func DefaultHost() HostConfig { return sim.DefaultConfig() }

// Option configures a Workbench.
type Option func(*config)

type config struct {
	opts experiments.Options
	// quality is not part of experiments.Options: the sampling campaign
	// never consults it — only predictors trained from the workbench do.
	quality *obs.Quality
	// blame is likewise serving-side only: servers and lifecycle loops
	// built from the workbench inherit it.
	blame *obs.Blame
	// storeDir, when non-empty, roots a versioned knowledge store the
	// workbench opens (and recovers) at build time.
	storeDir string
}

// WithMPLs sets the multiprogramming levels to sample (default 2–5).
func WithMPLs(mpls ...int) Option {
	return func(c *config) { c.opts.MPLs = append([]int(nil), mpls...) }
}

// WithSeed fixes the simulation/sampling seed (default 42).
func WithSeed(seed int64) Option {
	return func(c *config) { c.opts.Seed = seed }
}

// WithHost overrides the simulated host configuration.
func WithHost(h HostConfig) Option {
	return func(c *config) { c.opts.Config = &h }
}

// WithLHSRuns sets the number of disjoint Latin Hypercube designs sampled
// per MPL ≥ 3 (default 4).
func WithLHSRuns(n int) Option {
	return func(c *config) { c.opts.LHSRuns = n }
}

// WithSteadySamples sets the per-stream sample count of each steady-state
// mix experiment (default 5, as in the paper).
func WithSteadySamples(n int) Option {
	return func(c *config) { c.opts.SteadySamples = n }
}

// WithWorkers bounds the sampling worker pool used while profiling the
// workload (default: GOMAXPROCS). Every worker count collects identical
// training data — parallelism only changes wall-clock time.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n }
}

// WithRetry enables resilient sampling: every measurement is retried under
// the policy, templates whose sampling budget is exhausted are quarantined
// (training degrades instead of aborting), and the campaign stays
// byte-identical to a fault-free one as long as faults are transient. See
// Workbench.Resilience for the outcome report.
func WithRetry(p RetryPolicy) Option {
	return func(c *config) { c.opts.Retry = &p }
}

// WithCheckpoint persists sampling progress to path after every completed
// measurement. An interrupted campaign (crash, SIGINT, context
// cancellation) resumes from the checkpoint when rebuilt with the same
// options, producing a workbench byte-identical to an uninterrupted one.
// The file is removed once the campaign completes.
func WithCheckpoint(path string) Option {
	return func(c *config) { c.opts.CheckpointPath = path }
}

// WithFaults injects deterministic faults into the sampling campaign — the
// chaos harness behind the resilience tests, exposed for demos and for
// validating retry configurations.
func WithFaults(f FaultConfig) Option {
	return func(c *config) { c.opts.Faults = &f }
}

// QuickSampling shrinks the sampling design for demos and tests: MPLs 2–3,
// two LHS runs, three steady-state samples.
func QuickSampling() Option {
	return func(c *config) {
		c.opts.MPLs = []int{2, 3}
		c.opts.LHSRuns = 2
		c.opts.SteadySamples = 3
		c.opts.IsolatedRuns = 2
	}
}

// Workbench owns a simulated host, the TPC-DS workload, and the training
// data collected from it. It is the entry point of the public API.
type Workbench struct {
	env     *experiments.Env
	quality *obs.Quality
	blame   *obs.Blame
	store   *KnowledgeStore
}

// NewWorkbench profiles the bundled 25-template TPC-DS workload on a
// simulated host and samples concurrent mixes (exhaustive pairs at MPL 2,
// Latin Hypercube designs above). This corresponds to the paper's entire
// training-data collection and completes in seconds of wall-clock time.
func NewWorkbench(options ...Option) (*Workbench, error) {
	return NewWorkbenchContext(context.Background(), options...)
}

// NewWorkbenchContext is NewWorkbench with cancellation: when ctx is
// cancelled the sampling campaign stops promptly (flushing its checkpoint
// first, if one is configured) and returns ctx's error.
func NewWorkbenchContext(ctx context.Context, options ...Option) (*Workbench, error) {
	var c config
	for _, o := range options {
		o(&c)
	}
	env, err := experiments.NewEnvContext(ctx, c.opts)
	if err != nil {
		return nil, fmt.Errorf("contender: building workbench: %w", err)
	}
	w := &Workbench{env: env, quality: c.quality, blame: c.blame}
	if c.storeDir != "" {
		if w.store, err = OpenStore(c.storeDir); err != nil {
			return nil, fmt.Errorf("contender: opening store: %w", err)
		}
	}
	return w, nil
}

// Resilience reports how the workbench's sampling campaign went: retries
// spent, tasks resumed from a checkpoint, quarantined work, and the
// resulting template coverage. A fault-free campaign reports zeros.
func (w *Workbench) Resilience() CollectionReport { return w.env.Resilience }

// FaultStats returns the injected-fault tally when the workbench was built
// with WithFaults; zero otherwise.
func (w *Workbench) FaultStats() FaultStats { return w.env.FaultStats() }

// TemplateIDs returns the workload's template IDs.
func (w *Workbench) TemplateIDs() []int { return w.env.TemplateIDs() }

// Template returns the isolated statistics of a profiled template.
func (w *Workbench) Template(id int) (TemplateStats, bool) {
	return w.env.Know.Template(id)
}

// TemplateDescription returns the human-readable description of a bundled
// template.
func (w *Workbench) TemplateDescription(id int) string {
	if t, ok := w.env.Workload.Template(id); ok {
		return t.Description
	}
	return ""
}

// Observations returns the steady-state measurements collected at an MPL.
func (w *Workbench) Observations(mpl int) []Observation {
	return w.env.Observations(mpl)
}

// Train fits Contender's reference QS models from the collected samples and
// returns a ready Predictor. A workbench built with WithObserver emits a
// train.fit span around the fit and hands the observer to the predictor
// for its serve.* spans.
func (w *Workbench) Train() (*Predictor, error) {
	o := w.env.Opts.Observer
	observations := w.env.AllObservations()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	p, err := core.Train(w.env.Know, observations, core.TrainOptions{DropOutliers: true})
	if o != nil {
		obs.Emit(o, Event{
			Kind:  obs.SpanEnd,
			Span:  obs.SpanTrainFit,
			Value: float64(len(observations)),
			Dur:   time.Since(start),
			Err:   obs.ErrLabel(err),
		})
	}
	if err != nil {
		return nil, fmt.Errorf("contender: training: %w", err)
	}
	p.SetObserver(o)
	p.SetQuality(w.quality)
	return &Predictor{inner: p, env: w.env}, nil
}

// Simulate executes a mix of known templates at steady state on the
// simulated host and returns each slot's mean latency — ground truth for
// validating predictions.
func (w *Workbench) Simulate(mix []int) ([]float64, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		s, ok := w.env.Workload.Spec(id)
		if !ok {
			return nil, fmt.Errorf("contender: unknown template %d", id)
		}
		specs[i] = s
	}
	res, err := w.env.Engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: 5, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix))
	for i := range mix {
		out[i] = res.MeanLatency(i)
	}
	return out, nil
}

// SimulateIsolated runs one template alone and returns its result.
func (w *Workbench) SimulateIsolated(id int) (QueryResult, error) {
	s, ok := w.env.Workload.Spec(id)
	if !ok {
		return QueryResult{}, fmt.Errorf("contender: unknown template %d", id)
	}
	return w.env.Engine.RunIsolated(s)
}

// ProfileTemplate registers an ad-hoc template defined by a query plan:
// it derives the simulator resource profile via the cost model, measures
// the template's isolated statistics (one execution — the paper's
// constant-time sampling), and returns the stats to feed
// Predictor.PredictNew. The template is NOT added to the training
// workload.
func (w *Workbench) ProfileTemplate(id int, plan *Plan) (TemplateStats, error) {
	if err := plan.Validate(); err != nil {
		return TemplateStats{}, fmt.Errorf("contender: invalid plan: %w", err)
	}
	if _, exists := w.env.Workload.Template(id); exists {
		return TemplateStats{}, fmt.Errorf("contender: template id %d already exists in the workload", id)
	}
	spec := w.env.Workload.CostModel.Spec(w.env.Workload.Catalog, id, plan)
	res, err := w.env.Engine.RunIsolated(spec)
	if err != nil {
		return TemplateStats{}, err
	}
	ts := TemplateStats{
		ID:              id,
		IsolatedLatency: res.Latency,
		IOFraction:      res.IOFraction(),
		WorkingSetBytes: spec.WorkingSetBytes,
		SpoilerLatency:  map[int]float64{},
		Scans:           factScans(w, plan),
		PlanSteps:       plan.Steps(),
		RecordsAccessed: plan.RecordsAccessed(),
	}
	return ts, nil
}

// SimulateAdhoc measures the ground-truth latency of an ad-hoc plan
// running in a mix with known templates (the ad-hoc query is slot 0).
func (w *Workbench) SimulateAdhoc(id int, plan *Plan, concurrent []int) (float64, error) {
	spec := w.env.Workload.CostModel.Spec(w.env.Workload.Catalog, id, plan)
	specs := []sim.QuerySpec{spec}
	for _, cid := range concurrent {
		s, ok := w.env.Workload.Spec(cid)
		if !ok {
			return 0, fmt.Errorf("contender: unknown template %d", cid)
		}
		specs = append(specs, s)
	}
	res, err := w.env.Engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: 5, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return 0, err
	}
	return res.MeanLatency(0), nil
}

// GenerateAdhocPlan synthesizes a random but realistic analytical query
// plan against the workload's catalog — an unbounded supply of
// never-before-seen templates for exercising the ad-hoc prediction path.
// Generation is deterministic for a fixed seed.
func (w *Workbench) GenerateAdhocPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	t := tpcds.GenerateTemplate(w.env.Workload.Catalog, 0, tpcds.DefaultGeneratorOptions(), rng)
	return t.Plan
}

func factScans(w *Workbench, plan *Plan) map[string]bool {
	scans := plan.ScannedTables()
	for f := range scans {
		if t, ok := w.env.Workload.Catalog.Table(f); !ok || !t.Fact {
			delete(scans, f)
		}
	}
	return scans
}

// LoadPredictor reconstructs a trained predictor from a snapshot produced
// by Predictor.Save. The result predicts known templates and accepts
// ad-hoc ones exactly like a freshly trained predictor; it is not bound to
// a Workbench (use a Workbench when you also need simulation).
func LoadPredictor(r io.Reader) (*Predictor, error) {
	inner, err := core.LoadPredictor(r)
	if err != nil {
		return nil, err
	}
	return &Predictor{inner: inner}, nil
}

// LoadPredictorFile reads a predictor snapshot from a file.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("contender: opening snapshot: %w", err)
	}
	defer f.Close()
	return LoadPredictor(f)
}
