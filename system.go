package contender

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/lhs"
	"contender/internal/obs"
	"contender/internal/resilience"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Integration interface: Contender's models consume only a handful of
// observables — isolated latencies, procfs-style I/O time, plan scan sets,
// spoiler latencies, steady-state mix latencies. System captures exactly
// that contract, so the framework can be trained against any database
// that can run queries and a spoiler process: implement System for your
// DBMS and call TrainFromSystem. The bundled simulator is the reference
// implementation (Workbench.System).

// Measurement is one observed query execution.
type Measurement struct {
	// LatencySeconds is wall-clock execution time.
	LatencySeconds float64
	// IOSeconds is time spent on disk I/O during the execution (procfs
	// accounting on a real system).
	IOSeconds float64
}

// TemplateMeta describes a workload template to the trainer: its identity
// plus the plan-derived features Contender's models use.
type TemplateMeta struct {
	ID int
	// FactScans lists the fact tables the template's plan scans
	// sequentially (CQI's shared-scan terms are computed over them).
	FactScans []string
	// WorkingSetBytes is the size of the largest intermediate result
	// (from the plan's hash/sort operators).
	WorkingSetBytes float64
	// PlanSteps and RecordsAccessed are the complexity features of
	// Table 3.
	PlanSteps       int
	RecordsAccessed float64
}

// System is the measurement backend Contender trains against.
// Implementations must be deterministic per seed where possible, but the
// trainer tolerates real-world variance.
type System interface {
	// Templates enumerates the trainable workload.
	Templates() []TemplateMeta
	// FactTables lists the fact tables whose scan times CQI needs.
	FactTables() []string
	// ScanSeconds measures s_f: the isolated duration of a sequential
	// scan of the table.
	ScanSeconds(table string) (float64, error)
	// RunIsolated executes the template alone on an idle system.
	RunIsolated(id int) (Measurement, error)
	// RunSpoiler executes the template against the paper's spoiler for
	// the given MPL: (1-1/mpl) of RAM pinned, mpl-1 competing I/O streams.
	RunSpoiler(id int, mpl int) (Measurement, error)
	// RunMix executes the template mix at steady state (Figure 2) and
	// returns each slot's mean latency.
	RunMix(mix []int, samplesPerStream int) ([]float64, error)
}

// TrainConfig controls TrainFromSystem's sampling design. The zero value
// uses the paper's protocol at MPLs 2–3 with fail-fast error handling.
//
// TrainConfig and the Workbench's functional options configure the same
// underlying surface (internal/experiments.Options); both TrainFromSystem
// and TrainFromSystemContext additionally accept Option values, applied on
// top of the struct. The mapping is one-to-one:
//
//	WithMPLs          ↔ TrainConfig.MPLs
//	WithSeed          ↔ TrainConfig.Seed
//	WithLHSRuns       ↔ TrainConfig.LHSRuns
//	WithSteadySamples ↔ TrainConfig.SteadySamples
//	WithRetry         ↔ TrainConfig.Retry
//	WithCheckpoint    ↔ TrainConfig.CheckpointPath
//	WithFaults        ↔ TrainConfig.Faults
//	WithObserver      ↔ TrainConfig.Observer
//	WithQuality       ↔ TrainConfig.Quality
//
// WithHost and WithWorkers configure the bundled simulator host and its
// sampling pool; they have no meaning against an external System (which
// owns its host and serializes its own measurements) and are ignored on
// this path.
type TrainConfig struct {
	// MPLs to sample and train for (default 2, 3).
	MPLs []int
	// LHSRuns is the number of disjoint Latin Hypercube designs per
	// MPL ≥ 3 (default 2).
	LHSRuns int
	// SteadySamples per stream in each steady-state mix (default 3).
	SteadySamples int
	// IsolatedRuns averaged into l_min and p_t (default 2).
	IsolatedRuns int
	// Seed drives the sampling designs.
	Seed int64
	// Retry, when set, wraps every measurement in the policy's
	// retry/backoff loop and switches the trainer from fail-fast to
	// quarantine-and-degrade: a template, table, or mix whose measurements
	// exhaust the budget (or fail permanently) is dropped and training
	// continues on the rest, with the loss reported in TrainResult.Report.
	// Nil preserves the legacy behavior: the first error aborts.
	Retry *RetryPolicy
	// CheckpointPath, when non-empty, persists every completed measurement
	// to this file (atomically, after each one) and resumes from it on the
	// next run with an identical configuration. A resumed campaign yields a
	// predictor byte-identical to an uninterrupted one. The file is removed
	// when training completes.
	CheckpointPath string
	// Faults, when set, wraps the System in NewFaultSystem with this
	// configuration before training — deterministic chaos for validating a
	// retry policy against a real integration. The injected-fault tally is
	// reported in TrainReport.FaultStats.
	Faults *FaultConfig
	// Observer, when set, receives the campaign's structured event stream:
	// a train.campaign span around the whole run, train.scan/
	// train.profile/train.isolated/train.spoiler/train.mix spans per
	// measurement, a train.fit span around model fitting, and train.retry/
	// train.quarantine/train.checkpoint/train.resume points from the
	// resilience machinery. Observation never changes what is measured, and
	// a panicking observer is isolated at the emit site. The trained
	// predictor inherits the observer for its serve.* spans.
	Observer Observer
	// Quality, when set, is inherited by the trained predictor so its
	// Feedback calls stream per-template accuracy statistics and drift
	// states into the aggregator. Training itself never consults it.
	Quality *Quality
}

// envOptions maps the System-path config onto the shared collection
// options surface, so Workbench Option funcs can edit it.
func (c TrainConfig) envOptions() experiments.Options {
	return experiments.Options{
		MPLs:           c.MPLs,
		LHSRuns:        c.LHSRuns,
		SteadySamples:  c.SteadySamples,
		IsolatedRuns:   c.IsolatedRuns,
		Seed:           c.Seed,
		Retry:          c.Retry,
		Faults:         c.Faults,
		CheckpointPath: c.CheckpointPath,
		Observer:       c.Observer,
	}
}

// apply folds Workbench-style options into the config by round-tripping
// through the shared options surface. Host- and pool-related options
// (WithHost, WithWorkers) do not apply to external systems and are
// dropped.
func (c TrainConfig) apply(options []Option) TrainConfig {
	if len(options) == 0 {
		return c
	}
	cf := config{opts: c.envOptions(), quality: c.Quality}
	for _, o := range options {
		o(&cf)
	}
	c.MPLs = cf.opts.MPLs
	c.LHSRuns = cf.opts.LHSRuns
	c.SteadySamples = cf.opts.SteadySamples
	c.IsolatedRuns = cf.opts.IsolatedRuns
	c.Seed = cf.opts.Seed
	c.Retry = cf.opts.Retry
	c.Faults = cf.opts.Faults
	c.CheckpointPath = cf.opts.CheckpointPath
	c.Observer = cf.opts.Observer
	c.Quality = cf.quality
	return c
}

func (c TrainConfig) withDefaults() TrainConfig {
	if len(c.MPLs) == 0 {
		c.MPLs = []int{2, 3}
	}
	if c.LHSRuns <= 0 {
		c.LHSRuns = 2
	}
	if c.SteadySamples <= 0 {
		c.SteadySamples = 3
	}
	if c.IsolatedRuns <= 0 {
		c.IsolatedRuns = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// QuarantineRecord documents one unit of work the trainer gave up on:
// either a template (isolated or spoiler sampling failed) or a fact table
// (scan-time measurement failed). Site names the failing call site and
// Reason carries the terminal error.
type QuarantineRecord struct {
	Template int    `json:"template,omitempty"`
	Table    string `json:"table,omitempty"`
	Site     string `json:"site"`
	Reason   string `json:"reason"`
}

// TrainReport summarizes how a resilient training campaign went: what was
// retried, what was quarantined, what coverage the resulting predictor
// actually has.
type TrainReport struct {
	// TotalTemplates is the size of the workload offered for training.
	TotalTemplates int `json:"total_templates"`
	// TrainedTemplates is how many survived sampling.
	TrainedTemplates int `json:"trained_templates"`
	// QuarantinedTemplates lists templates dropped after their retry
	// budget was exhausted (or a permanent failure).
	QuarantinedTemplates []QuarantineRecord `json:"quarantined_templates,omitempty"`
	// QuarantinedTables lists fact tables whose scan time could not be
	// measured; CQI degrades gracefully without them.
	QuarantinedTables []QuarantineRecord `json:"quarantined_tables,omitempty"`
	// PlannedMixes and DroppedMixes count the steady-state design: a mix is
	// dropped when it contains a quarantined template or its own
	// measurement failed terminally.
	PlannedMixes int `json:"planned_mixes"`
	DroppedMixes int `json:"dropped_mixes"`
	// Retries is the total number of extra attempts the retry policy spent.
	Retries int `json:"retries"`
	// Resumed is the number of measurements replayed from the checkpoint
	// instead of re-measured.
	Resumed int `json:"resumed_measurements"`
	// FaultStats tallies what TrainConfig.Faults/WithFaults injected; nil
	// when no fault injection was configured.
	FaultStats *FaultStats `json:"fault_stats,omitempty"`
}

// Degraded reports whether the campaign lost any coverage.
func (r TrainReport) Degraded() bool {
	return len(r.QuarantinedTemplates) > 0 || len(r.QuarantinedTables) > 0 || r.DroppedMixes > 0
}

// Coverage is the fraction of the offered workload the predictor covers.
func (r TrainReport) Coverage() float64 {
	if r.TotalTemplates == 0 {
		return 1
	}
	return float64(r.TrainedTemplates) / float64(r.TotalTemplates)
}

// TrainResult is a trained predictor plus the campaign's resilience report.
type TrainResult struct {
	Predictor *Predictor
	Report    TrainReport
}

// TrainFromSystem runs Contender's full training pipeline against an
// arbitrary measurement backend: profile every template in isolation and
// under the spoiler, measure per-table scan times, sample concurrent mixes
// (exhaustive pairs at MPL 2, LHS designs above), and fit the reference QS
// models. It is a thin wrapper over TrainFromSystemContext and returns the
// same result shape: the trained predictor plus the campaign report.
// Workbench-style options (WithRetry, WithCheckpoint, WithFaults,
// WithObserver, …) are applied on top of cfg; see TrainConfig for the
// mapping.
//
// Before the observability release this function returned a bare
// *Predictor; TrainPredictorFromSystem preserves that signature.
func TrainFromSystem(sys System, cfg TrainConfig, options ...Option) (*TrainResult, error) {
	return TrainFromSystemContext(context.Background(), sys, cfg, options...)
}

// TrainPredictorFromSystem is the pre-observability TrainFromSystem: it
// trains with cfg and returns only the predictor, discarding the campaign
// report.
//
// Deprecated: use TrainFromSystem, which returns the predictor together
// with its TrainReport.
func TrainPredictorFromSystem(sys System, cfg TrainConfig) (*Predictor, error) {
	res, err := TrainFromSystemContext(context.Background(), sys, cfg)
	if err != nil {
		return nil, err
	}
	return res.Predictor, nil
}

// TrainFromSystemContext is TrainFromSystem with cancellation. The context
// is honored between measurements (and during retry backoff); cancelling
// returns ctx.Err() with all completed work already persisted when
// cfg.CheckpointPath is set, so the campaign can be resumed. With
// cfg.Retry set, failures are retried and then quarantined rather than
// aborting; the report describes the degradation.
func TrainFromSystemContext(ctx context.Context, sys System, cfg TrainConfig, options ...Option) (*TrainResult, error) {
	cfg = cfg.apply(options).withDefaults()
	cfg.Retry = observedRetryPolicy(cfg.Retry, cfg.Observer)
	var faultSys *FaultSystem
	if cfg.Faults != nil {
		faultSys = NewFaultSystem(sys, *cfg.Faults)
		sys = faultSys
	}
	o := cfg.Observer
	var start time.Time
	if o != nil {
		start = time.Now()
		obs.Emit(o, Event{Kind: obs.SpanBegin, Span: obs.SpanTrainCampaign})
	}
	res, err := trainFromSystem(ctx, sys, cfg)
	if o != nil {
		end := Event{Kind: obs.SpanEnd, Span: obs.SpanTrainCampaign, Dur: time.Since(start), Err: obs.ErrLabel(err)}
		if res != nil {
			end.Value = float64(res.Report.TrainedTemplates)
		}
		obs.Emit(o, end)
	}
	if err != nil {
		return nil, err
	}
	if faultSys != nil {
		stats := faultSys.Stats()
		res.Report.FaultStats = &stats
	}
	res.Predictor.SetObserver(o)
	res.Predictor.SetQuality(cfg.Quality)
	return res, nil
}

// trainFromSystem is the campaign body, once config, fault wrapping, and
// the campaign span are in place.
func trainFromSystem(ctx context.Context, sys System, cfg TrainConfig) (*TrainResult, error) {
	templates := sys.Templates()
	if len(templates) < 2 {
		return nil, resilience.Permanent(fmt.Errorf("contender: need at least 2 templates, have %d", len(templates)))
	}
	tables := sys.FactTables()

	t := &trainer{
		ctx: ctx, sys: sys, cfg: cfg, o: cfg.Observer,
		badTemplates: map[int]bool{}, badTables: map[string]bool{},
	}
	t.report.TotalTemplates = len(templates)
	if cfg.CheckpointPath != "" {
		ckpt, err := loadTrainCheckpoint(cfg.CheckpointPath, trainFingerprint(cfg, templates, tables))
		if err != nil {
			return nil, err
		}
		t.ckpt = ckpt
		// Replay quarantine decisions from the interrupted campaign so the
		// resumed run skips the same units of work.
		for _, q := range ckpt.state.Quarantined {
			if q.Table != "" {
				t.badTables[q.Table] = true
				t.report.QuarantinedTables = append(t.report.QuarantinedTables, q)
			} else {
				t.badTemplates[q.Template] = true
				t.report.QuarantinedTemplates = append(t.report.QuarantinedTemplates, q)
			}
			t.emitPoint(obs.PointTrainQuarantine, q.Site)
		}
	}

	know := core.NewKnowledge()
	for _, table := range tables {
		if t.badTables[table] {
			continue
		}
		s, err := t.scanSeconds(table)
		if err != nil {
			if t.fatal(err) {
				return nil, fmt.Errorf("contender: measuring scan of %s: %w", table, err)
			}
			if qerr := t.quarantineTable(table, "scan/"+table, err); qerr != nil {
				return nil, qerr
			}
			continue
		}
		know.SetScanTime(table, s)
	}

	// The mix designs are drawn over the FULL workload even when templates
	// quarantine: keeping every template in the index space means the
	// surviving mixes are exactly the mixes a fault-free campaign would
	// have run, so degradation drops observations without reshuffling them.
	ids := make([]int, len(templates))
	for i, meta := range templates {
		ids[i] = meta.ID
		if t.badTemplates[meta.ID] {
			continue
		}
		ts, site, err := t.profileObserved(meta)
		if err != nil {
			if t.fatal(err) {
				return nil, err
			}
			if qerr := t.quarantineTemplate(meta.ID, site, err); qerr != nil {
				return nil, qerr
			}
			continue
		}
		know.AddTemplate(ts)
	}
	trained := len(templates) - len(t.badTemplates)
	if trained < 2 {
		return nil, resilience.Permanent(fmt.Errorf("contender: only %d of %d templates survived sampling (need at least 2, %d quarantined)",
			trained, len(templates), len(t.report.QuarantinedTemplates)))
	}

	var observations []core.Observation
	for _, mpl := range cfg.MPLs {
		for i, mix := range lhs.MixesFor(len(ids), mpl, cfg.LHSRuns, cfg.Seed+int64(mpl)) {
			t.report.PlannedMixes++
			idMix := make(lhs.Mix, len(mix))
			quarantined := false
			for j, idx := range mix {
				idMix[j] = ids[idx]
				if t.badTemplates[idMix[j]] {
					quarantined = true
				}
			}
			if quarantined {
				t.report.DroppedMixes++
				continue
			}
			lats, err := t.mix(mpl, i, idMix)
			if err != nil {
				if t.fatal(err) {
					return nil, fmt.Errorf("contender: steady-state mix %v: %w", idMix, err)
				}
				t.report.DroppedMixes++
				continue
			}
			for slot, id := range idMix {
				observations = append(observations, core.Observation{
					Primary:    id,
					Concurrent: idMix.WithoutOne(id),
					Latency:    lats[slot],
				})
			}
		}
	}

	var fitStart time.Time
	if t.o != nil {
		fitStart = time.Now()
	}
	inner, err := core.Train(know, observations, core.TrainOptions{DropOutliers: true})
	if t.o != nil {
		obs.Emit(t.o, Event{
			Kind:  obs.SpanEnd,
			Span:  obs.SpanTrainFit,
			Value: float64(len(observations)),
			Dur:   time.Since(fitStart),
			Err:   obs.ErrLabel(err),
		})
	}
	if err != nil {
		return nil, fmt.Errorf("contender: training from system: %w", err)
	}
	t.report.TrainedTemplates = trained
	if t.ckpt != nil {
		t.ckpt.discard()
	}
	return &TrainResult{Predictor: &Predictor{inner: inner}, Report: t.report}, nil
}

// errCheckpointWrite marks a failed checkpoint flush — always fatal, even
// in quarantine mode, because continuing would break the resume guarantee.
// Classified permanent so taxonomy-aware callers agree.
var errCheckpointWrite = resilience.Permanent(errors.New("checkpoint write failed"))

// trainer carries one campaign's state through TrainFromSystemContext.
type trainer struct {
	ctx    context.Context
	sys    System
	cfg    TrainConfig
	ckpt   *trainCheckpoint
	report TrainReport
	o      obs.Observer

	badTemplates map[int]bool
	badTables    map[string]bool
}

// emitPoint emits an instantaneous event when an observer is installed.
func (t *trainer) emitPoint(span, key string) {
	if t.o == nil {
		return
	}
	obs.Emit(t.o, Event{Kind: obs.Point, Span: span, Key: key})
}

// fatal reports whether err must abort the campaign: cancellation and
// checkpoint-write failures always do; every error does when no retry
// policy is configured (legacy fail-fast mode).
func (t *trainer) fatal(err error) bool {
	return t.cfg.Retry == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errCheckpointWrite)
}

// measure runs one measurement under the retry policy (or once, in legacy
// mode), accounts for the attempts spent, and wraps the whole thing in the
// given span when an observer is installed.
func (t *trainer) measure(span, site string, fn func() error) error {
	if t.o == nil {
		_, err := t.measureAttempts(site, fn)
		return err
	}
	obs.Emit(t.o, Event{Kind: obs.SpanBegin, Span: span, Key: site})
	start := time.Now()
	attempts, err := t.measureAttempts(site, fn)
	obs.Emit(t.o, Event{
		Kind:    obs.SpanEnd,
		Span:    span,
		Key:     site,
		Attempt: attempts,
		Dur:     time.Since(start),
		Err:     obs.ErrLabel(err),
	})
	return err
}

func (t *trainer) measureAttempts(site string, fn func() error) (int, error) {
	if t.cfg.Retry == nil {
		if err := t.ctx.Err(); err != nil {
			return 0, err
		}
		return 1, fn()
	}
	attempts, err := t.cfg.Retry.Do(t.ctx, site, fn)
	if attempts > 1 {
		t.report.Retries += attempts - 1
	}
	return attempts, err
}

// persist flushes the checkpoint after a completed measurement at site.
func (t *trainer) persist(site string) error {
	if t.ckpt == nil {
		return nil
	}
	if err := t.ckpt.flush(); err != nil {
		return fmt.Errorf("%w: %w", errCheckpointWrite, err)
	}
	t.emitPoint(obs.PointTrainCheckpoint, site)
	return nil
}

func (t *trainer) quarantineTable(table, site string, err error) error {
	rec := QuarantineRecord{Table: table, Site: site, Reason: err.Error()}
	t.report.QuarantinedTables = append(t.report.QuarantinedTables, rec)
	t.badTables[table] = true
	t.emitPoint(obs.PointTrainQuarantine, site)
	if t.ckpt != nil {
		t.ckpt.state.Quarantined = append(t.ckpt.state.Quarantined, rec)
		return t.persist(site)
	}
	return nil
}

func (t *trainer) quarantineTemplate(id int, site string, err error) error {
	rec := QuarantineRecord{Template: id, Site: site, Reason: err.Error()}
	t.report.QuarantinedTemplates = append(t.report.QuarantinedTemplates, rec)
	t.badTemplates[id] = true
	t.emitPoint(obs.PointTrainQuarantine, site)
	if t.ckpt != nil {
		t.ckpt.state.Quarantined = append(t.ckpt.state.Quarantined, rec)
		return t.persist(site)
	}
	return nil
}

// scanSeconds measures (or replays) one table's scan time.
func (t *trainer) scanSeconds(table string) (float64, error) {
	site := "scan/" + table
	if t.ckpt != nil {
		if v, ok := t.ckpt.state.Scans[site]; ok {
			t.report.Resumed++
			t.emitPoint(obs.PointTrainResume, site)
			return v, nil
		}
	}
	var out float64
	err := t.measure(obs.SpanTrainScan, site, func() error {
		v, err := t.sys.ScanSeconds(table)
		if err != nil {
			return err
		}
		if !(v > 0) || math.IsInf(v, 0) {
			return resilience.Corruptf("scan of %s returned %g seconds", table, v)
		}
		out = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	if t.ckpt != nil {
		t.ckpt.state.Scans[site] = out
		if err := t.persist(site); err != nil {
			return 0, err
		}
	}
	return out, nil
}

// validateMeasurement rejects values no real execution can produce; the
// corrupt classification makes the retry loop discard and resample them.
func validateMeasurement(m Measurement) error {
	if !(m.LatencySeconds > 0) || math.IsInf(m.LatencySeconds, 0) {
		return resilience.Corruptf("latency %g seconds", m.LatencySeconds)
	}
	if m.IOSeconds < 0 || math.IsNaN(m.IOSeconds) || math.IsInf(m.IOSeconds, 0) {
		return resilience.Corruptf("io time %g seconds", m.IOSeconds)
	}
	return nil
}

// isolated measures (or replays) one isolated run of a template.
func (t *trainer) isolated(id, run int) (Measurement, error) {
	site := fmt.Sprintf("isolated/%d/%d", id, run)
	if t.ckpt != nil {
		if m, ok := t.ckpt.state.Isolated[site]; ok {
			t.report.Resumed++
			t.emitPoint(obs.PointTrainResume, site)
			return m, nil
		}
	}
	var out Measurement
	err := t.measure(obs.SpanTrainIsolated, site, func() error {
		m, err := t.sys.RunIsolated(id)
		if err != nil {
			return err
		}
		if verr := validateMeasurement(m); verr != nil {
			return verr
		}
		out = m
		return nil
	})
	if err != nil {
		return Measurement{}, err
	}
	if t.ckpt != nil {
		t.ckpt.state.Isolated[site] = out
		if err := t.persist(site); err != nil {
			return Measurement{}, err
		}
	}
	return out, nil
}

// spoiler measures (or replays) one spoiler latency of a template.
func (t *trainer) spoiler(id, mpl int) (float64, error) {
	site := fmt.Sprintf("spoiler/%d/%d", id, mpl)
	if t.ckpt != nil {
		if v, ok := t.ckpt.state.Spoilers[site]; ok {
			t.report.Resumed++
			t.emitPoint(obs.PointTrainResume, site)
			return v, nil
		}
	}
	var out float64
	err := t.measure(obs.SpanTrainSpoiler, site, func() error {
		m, err := t.sys.RunSpoiler(id, mpl)
		if err != nil {
			return err
		}
		if verr := validateMeasurement(m); verr != nil {
			return verr
		}
		out = m.LatencySeconds
		return nil
	})
	if err != nil {
		return 0, err
	}
	if t.ckpt != nil {
		t.ckpt.state.Spoilers[site] = out
		if err := t.persist(site); err != nil {
			return 0, err
		}
	}
	return out, nil
}

// mix measures (or replays) one steady-state mix.
func (t *trainer) mix(mpl, index int, idMix []int) ([]float64, error) {
	site := fmt.Sprintf("mix/%d/%d", mpl, index)
	if t.ckpt != nil {
		if lats, ok := t.ckpt.state.Mixes[site]; ok {
			t.report.Resumed++
			t.emitPoint(obs.PointTrainResume, site)
			return lats, nil
		}
	}
	var out []float64
	err := t.measure(obs.SpanTrainMix, site, func() error {
		lats, err := t.sys.RunMix(idMix, t.cfg.SteadySamples)
		if err != nil {
			return err
		}
		if len(lats) != len(idMix) {
			return resilience.Corruptf("RunMix returned %d latencies for a %d-query mix", len(lats), len(idMix))
		}
		for slot, l := range lats {
			if !(l > 0) || math.IsInf(l, 0) {
				return resilience.Corruptf("mix latency %g seconds in slot %d", l, slot)
			}
		}
		out = lats
		return nil
	})
	if err != nil {
		return nil, err
	}
	if t.ckpt != nil {
		t.ckpt.state.Mixes[site] = out
		if err := t.persist(site); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// profileObserved wraps profile in a train.profile span covering the
// template's whole isolated+spoiler measurement block.
func (t *trainer) profileObserved(meta TemplateMeta) (core.TemplateStats, string, error) {
	if t.o == nil {
		return t.profile(meta)
	}
	key := fmt.Sprintf("template/%d", meta.ID)
	obs.Emit(t.o, Event{Kind: obs.SpanBegin, Span: obs.SpanTrainProfile, Key: key, Template: meta.ID})
	start := time.Now()
	ts, site, err := t.profile(meta)
	obs.Emit(t.o, Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanTrainProfile,
		Key:      key,
		Template: meta.ID,
		Dur:      time.Since(start),
		Err:      obs.ErrLabel(err),
	})
	return ts, site, err
}

// profile collects one template's isolated statistics and spoiler
// latencies. On failure it returns the failing call site so the caller can
// quarantine with context.
func (t *trainer) profile(meta TemplateMeta) (core.TemplateStats, string, error) {
	var latSum, ioSum float64
	for r := 0; r < t.cfg.IsolatedRuns; r++ {
		m, err := t.isolated(meta.ID, r)
		if err != nil {
			return core.TemplateStats{}, fmt.Sprintf("isolated/%d/%d", meta.ID, r),
				fmt.Errorf("contender: isolated run of T%d: %w", meta.ID, err)
		}
		latSum += m.LatencySeconds
		ioSum += m.IOSeconds
	}
	ts := core.TemplateStats{
		ID:              meta.ID,
		IsolatedLatency: latSum / float64(t.cfg.IsolatedRuns),
		IOFraction:      ioSum / latSum,
		WorkingSetBytes: meta.WorkingSetBytes,
		PlanSteps:       meta.PlanSteps,
		RecordsAccessed: meta.RecordsAccessed,
		Scans:           make(map[string]bool, len(meta.FactScans)),
		SpoilerLatency:  make(map[int]float64, len(t.cfg.MPLs)),
	}
	for _, f := range meta.FactScans {
		ts.Scans[f] = true
	}
	for _, mpl := range t.cfg.MPLs {
		v, err := t.spoiler(meta.ID, mpl)
		if err != nil {
			return core.TemplateStats{}, fmt.Sprintf("spoiler/%d/%d", meta.ID, mpl),
				fmt.Errorf("contender: spoiler run of T%d at MPL %d: %w", meta.ID, mpl, err)
		}
		ts.SpoilerLatency[mpl] = v
	}
	return ts, "", nil
}

// System returns the simulator-backed reference implementation of the
// System interface, measuring the workbench's workload on its host.
func (w *Workbench) System() System {
	return &simSystem{workload: w.env.Workload, engine: w.env.Engine}
}

// simSystem adapts the simulator to the System interface.
type simSystem struct {
	workload *tpcds.Workload
	engine   *sim.Engine
}

func (s *simSystem) Templates() []TemplateMeta {
	var out []TemplateMeta
	for _, t := range s.workload.Templates() {
		spec := s.workload.MustSpec(t.ID)
		meta := TemplateMeta{
			ID:              t.ID,
			WorkingSetBytes: spec.WorkingSetBytes,
			PlanSteps:       t.Plan.Steps(),
			RecordsAccessed: t.Plan.RecordsAccessed(),
		}
		for table := range t.Plan.ScannedTables() {
			if tb, ok := s.workload.Catalog.Table(table); ok && tb.Fact {
				meta.FactScans = append(meta.FactScans, table)
			}
		}
		out = append(out, meta)
	}
	return out
}

func (s *simSystem) FactTables() []string {
	var out []string
	for _, t := range s.workload.Catalog.FactTables() {
		out = append(out, t.Name)
	}
	return out
}

func (s *simSystem) ScanSeconds(table string) (float64, error) {
	t, ok := s.workload.Catalog.Table(table)
	if !ok {
		return 0, resilience.Permanent(fmt.Errorf("unknown table %q", table))
	}
	return s.engine.MeasureScanTime(table, t.Bytes())
}

func (s *simSystem) RunIsolated(id int) (Measurement, error) {
	spec, ok := s.workload.Spec(id)
	if !ok {
		return Measurement{}, resilience.Permanent(fmt.Errorf("%w: T%d", core.ErrUnknownTemplate, id))
	}
	res, err := s.engine.RunIsolated(spec)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{LatencySeconds: res.Latency, IOSeconds: res.IOTime}, nil
}

func (s *simSystem) RunSpoiler(id, mpl int) (Measurement, error) {
	spec, ok := s.workload.Spec(id)
	if !ok {
		return Measurement{}, resilience.Permanent(fmt.Errorf("%w: T%d", core.ErrUnknownTemplate, id))
	}
	res, err := s.engine.RunWithSpoiler(spec, mpl)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{LatencySeconds: res.Latency, IOSeconds: res.IOTime}, nil
}

func (s *simSystem) RunMix(mix []int, samples int) ([]float64, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		spec, ok := s.workload.Spec(id)
		if !ok {
			return nil, resilience.Permanent(fmt.Errorf("%w: T%d", core.ErrUnknownTemplate, id))
		}
		specs[i] = spec
	}
	res, err := s.engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: samples, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix))
	for i := range mix {
		out[i] = res.MeanLatency(i)
	}
	return out, nil
}
