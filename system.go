package contender

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/lhs"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Integration interface: Contender's models consume only a handful of
// observables — isolated latencies, procfs-style I/O time, plan scan sets,
// spoiler latencies, steady-state mix latencies. System captures exactly
// that contract, so the framework can be trained against any database
// that can run queries and a spoiler process: implement System for your
// DBMS and call TrainFromSystem. The bundled simulator is the reference
// implementation (Workbench.System).

// Measurement is one observed query execution.
type Measurement struct {
	// LatencySeconds is wall-clock execution time.
	LatencySeconds float64
	// IOSeconds is time spent on disk I/O during the execution (procfs
	// accounting on a real system).
	IOSeconds float64
}

// TemplateMeta describes a workload template to the trainer: its identity
// plus the plan-derived features Contender's models use.
type TemplateMeta struct {
	ID int
	// FactScans lists the fact tables the template's plan scans
	// sequentially (CQI's shared-scan terms are computed over them).
	FactScans []string
	// WorkingSetBytes is the size of the largest intermediate result
	// (from the plan's hash/sort operators).
	WorkingSetBytes float64
	// PlanSteps and RecordsAccessed are the complexity features of
	// Table 3.
	PlanSteps       int
	RecordsAccessed float64
}

// System is the measurement backend Contender trains against.
// Implementations must be deterministic per seed where possible, but the
// trainer tolerates real-world variance.
type System interface {
	// Templates enumerates the trainable workload.
	Templates() []TemplateMeta
	// FactTables lists the fact tables whose scan times CQI needs.
	FactTables() []string
	// ScanSeconds measures s_f: the isolated duration of a sequential
	// scan of the table.
	ScanSeconds(table string) (float64, error)
	// RunIsolated executes the template alone on an idle system.
	RunIsolated(id int) (Measurement, error)
	// RunSpoiler executes the template against the paper's spoiler for
	// the given MPL: (1-1/mpl) of RAM pinned, mpl-1 competing I/O streams.
	RunSpoiler(id int, mpl int) (Measurement, error)
	// RunMix executes the template mix at steady state (Figure 2) and
	// returns each slot's mean latency.
	RunMix(mix []int, samplesPerStream int) ([]float64, error)
}

// TrainConfig controls TrainFromSystem's sampling design. The zero value
// uses the paper's protocol at MPLs 2–3.
type TrainConfig struct {
	// MPLs to sample and train for (default 2, 3).
	MPLs []int
	// LHSRuns is the number of disjoint Latin Hypercube designs per
	// MPL ≥ 3 (default 2).
	LHSRuns int
	// SteadySamples per stream in each steady-state mix (default 3).
	SteadySamples int
	// IsolatedRuns averaged into l_min and p_t (default 2).
	IsolatedRuns int
	// Seed drives the sampling designs.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if len(c.MPLs) == 0 {
		c.MPLs = []int{2, 3}
	}
	if c.LHSRuns <= 0 {
		c.LHSRuns = 2
	}
	if c.SteadySamples <= 0 {
		c.SteadySamples = 3
	}
	if c.IsolatedRuns <= 0 {
		c.IsolatedRuns = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// TrainFromSystem runs Contender's full training pipeline against an
// arbitrary measurement backend: profile every template in isolation and
// under the spoiler, measure per-table scan times, sample concurrent mixes
// (exhaustive pairs at MPL 2, LHS designs above), and fit the reference QS
// models.
func TrainFromSystem(sys System, cfg TrainConfig) (*Predictor, error) {
	cfg = cfg.withDefaults()
	templates := sys.Templates()
	if len(templates) < 2 {
		return nil, fmt.Errorf("contender: need at least 2 templates, have %d", len(templates))
	}

	know := core.NewKnowledge()
	for _, table := range sys.FactTables() {
		s, err := sys.ScanSeconds(table)
		if err != nil {
			return nil, fmt.Errorf("contender: measuring scan of %s: %w", table, err)
		}
		know.SetScanTime(table, s)
	}

	ids := make([]int, len(templates))
	for i, t := range templates {
		ids[i] = t.ID
		var latSum, ioSum float64
		for r := 0; r < cfg.IsolatedRuns; r++ {
			m, err := sys.RunIsolated(t.ID)
			if err != nil {
				return nil, fmt.Errorf("contender: isolated run of T%d: %w", t.ID, err)
			}
			latSum += m.LatencySeconds
			ioSum += m.IOSeconds
		}
		ts := core.TemplateStats{
			ID:              t.ID,
			IsolatedLatency: latSum / float64(cfg.IsolatedRuns),
			IOFraction:      ioSum / latSum,
			WorkingSetBytes: t.WorkingSetBytes,
			PlanSteps:       t.PlanSteps,
			RecordsAccessed: t.RecordsAccessed,
			Scans:           make(map[string]bool, len(t.FactScans)),
			SpoilerLatency:  make(map[int]float64, len(cfg.MPLs)),
		}
		for _, f := range t.FactScans {
			ts.Scans[f] = true
		}
		for _, mpl := range cfg.MPLs {
			m, err := sys.RunSpoiler(t.ID, mpl)
			if err != nil {
				return nil, fmt.Errorf("contender: spoiler run of T%d at MPL %d: %w", t.ID, mpl, err)
			}
			ts.SpoilerLatency[mpl] = m.LatencySeconds
		}
		know.AddTemplate(ts)
	}

	var observations []core.Observation
	for _, mpl := range cfg.MPLs {
		for _, mix := range lhs.MixesFor(len(ids), mpl, cfg.LHSRuns, cfg.Seed+int64(mpl)) {
			idMix := make(lhs.Mix, len(mix))
			for i, idx := range mix {
				idMix[i] = ids[idx]
			}
			lats, err := sys.RunMix(idMix, cfg.SteadySamples)
			if err != nil {
				return nil, fmt.Errorf("contender: steady-state mix %v: %w", idMix, err)
			}
			if len(lats) != len(idMix) {
				return nil, fmt.Errorf("contender: RunMix returned %d latencies for a %d-query mix", len(lats), len(idMix))
			}
			for slot, id := range idMix {
				observations = append(observations, core.Observation{
					Primary:    id,
					Concurrent: idMix.WithoutOne(id),
					Latency:    lats[slot],
				})
			}
		}
	}

	inner, err := core.Train(know, observations, core.TrainOptions{DropOutliers: true})
	if err != nil {
		return nil, fmt.Errorf("contender: training from system: %w", err)
	}
	return &Predictor{inner: inner}, nil
}

// System returns the simulator-backed reference implementation of the
// System interface, measuring the workbench's workload on its host.
func (w *Workbench) System() System {
	return &simSystem{workload: w.env.Workload, engine: w.env.Engine}
}

// simSystem adapts the simulator to the System interface.
type simSystem struct {
	workload *tpcds.Workload
	engine   *sim.Engine
}

func (s *simSystem) Templates() []TemplateMeta {
	var out []TemplateMeta
	for _, t := range s.workload.Templates() {
		spec := s.workload.MustSpec(t.ID)
		meta := TemplateMeta{
			ID:              t.ID,
			WorkingSetBytes: spec.WorkingSetBytes,
			PlanSteps:       t.Plan.Steps(),
			RecordsAccessed: t.Plan.RecordsAccessed(),
		}
		for table := range t.Plan.ScannedTables() {
			if tb, ok := s.workload.Catalog.Table(table); ok && tb.Fact {
				meta.FactScans = append(meta.FactScans, table)
			}
		}
		out = append(out, meta)
	}
	return out
}

func (s *simSystem) FactTables() []string {
	var out []string
	for _, t := range s.workload.Catalog.FactTables() {
		out = append(out, t.Name)
	}
	return out
}

func (s *simSystem) ScanSeconds(table string) (float64, error) {
	t, ok := s.workload.Catalog.Table(table)
	if !ok {
		return 0, fmt.Errorf("unknown table %q", table)
	}
	return s.engine.MeasureScanTime(table, t.Bytes())
}

func (s *simSystem) RunIsolated(id int) (Measurement, error) {
	spec, ok := s.workload.Spec(id)
	if !ok {
		return Measurement{}, fmt.Errorf("unknown template %d", id)
	}
	res, err := s.engine.RunIsolated(spec)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{LatencySeconds: res.Latency, IOSeconds: res.IOTime}, nil
}

func (s *simSystem) RunSpoiler(id, mpl int) (Measurement, error) {
	spec, ok := s.workload.Spec(id)
	if !ok {
		return Measurement{}, fmt.Errorf("unknown template %d", id)
	}
	res, err := s.engine.RunWithSpoiler(spec, mpl)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{LatencySeconds: res.Latency, IOSeconds: res.IOTime}, nil
}

func (s *simSystem) RunMix(mix []int, samples int) ([]float64, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		spec, ok := s.workload.Spec(id)
		if !ok {
			return nil, fmt.Errorf("unknown template %d", id)
		}
		specs[i] = spec
	}
	res, err := s.engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: samples, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix))
	for i := range mix {
		out[i] = res.MeanLatency(i)
	}
	return out, nil
}
