package contender

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each BenchmarkXxx runs
// the corresponding experiment against a fully sampled environment
// (exhaustive pairs at MPL 2, four LHS designs at MPLs 3–5) and reports the
// experiment's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. cmd/contender-bench prints the same
// artifacts as formatted tables.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/lhs"
	"contender/internal/obs"
	"contender/internal/sim"
	"contender/internal/stats"
	"contender/internal/tpcds"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// fullEnv builds the paper-scale sampling environment once per process.
func fullEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.Options{
			MPLs:          []int{2, 3, 4, 5},
			LHSRuns:       4,
			SteadySamples: 5,
			Seed:          42,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// runExperiment benches one experiment driver and reports named metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	env := fullEnv(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Run(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := res.Metrics[m]; ok {
			b.ReportMetric(v, strings.ReplaceAll(m, " ", "-"))
		}
	}
}

// Table 2 — MRE of the CQI metric and its two ablations, MPLs 2–5.
// Paper: Baseline I/O 25.4%, Positive I/O 20.4%, CQI 20.2%.
func BenchmarkTable2CQIVariants(b *testing.B) {
	runExperiment(b, "table2", "mre/CQI", "mre/Baseline I/O", "mre/Positive I/O")
}

// §3 — ML baselines on a static workload at MPL 2.
// Paper: KCCA 32%, SVM 21%.
func BenchmarkSec3MLStatic(b *testing.B) {
	runExperiment(b, "sec3static", "mre/kcca", "mre/svm")
}

// Figure 3 — ML baselines on unseen templates (leave-one-out, MPL 2).
// Paper: both learners degrade badly on new templates.
func BenchmarkFig3MLNewTemplates(b *testing.B) {
	runExperiment(b, "fig3", "kcca/avg", "svm/avg")
}

// Figure 4 — linear relationship between QS slope and intercept.
// Paper: coefficients lie close to a common trend line.
func BenchmarkFig4Coefficients(b *testing.B) {
	runExperiment(b, "fig4", "r2", "trend/slope")
}

// Table 3 — feature↔coefficient correlations (signed R²).
func BenchmarkTable3FeatureR2(b *testing.B) {
	runExperiment(b, "table3", "mu/Isolated latency", "b/Isolated latency")
}

// Figure 6 — spoiler latency growth by template class.
// Paper: linear growth; light < I/O-bound < memory-heavy slopes.
func BenchmarkFig6SpoilerGrowth(b *testing.B) {
	runExperiment(b, "fig6", "slope-per-mpl/t62", "slope-per-mpl/t71", "slope-per-mpl/t22")
}

// §5.5 — spoiler latency is linear in the MPL (train 1–3, test 4–5).
// Paper: ≈8% relative error.
func BenchmarkSec55SpoilerMPL(b *testing.B) {
	runExperiment(b, "sec55mpl", "mre")
}

// Figure 7 — per-template error of the CQI model at MPL 4.
// Paper: 19% average.
func BenchmarkFig7PerTemplate(b *testing.B) {
	runExperiment(b, "fig7", "mre/avg", "mre/io-bound", "mre/random-io", "mre/memory")
}

// Figure 8 — known vs. unknown templates, MPLs 2–5.
// Paper: Known 19%, Unknown-Y 23%, Unknown-QS 25%.
func BenchmarkFig8QSModels(b *testing.B) {
	runExperiment(b, "fig8", "known/avg", "unknown-y/avg", "unknown-qs/avg")
}

// Figure 9 — spoiler prediction for new templates.
// Paper: KNN ≈15% vs. I/O-Time ≈20%.
func BenchmarkFig9SpoilerPrediction(b *testing.B) {
	runExperiment(b, "fig9", "knn/avg", "iotime/avg")
}

// Figure 10 — end-to-end prediction for new templates.
// Paper: ≈25% with predicted spoilers; Isolated Prediction worst.
func BenchmarkFig10EndToEnd(b *testing.B) {
	runExperiment(b, "fig10", "known/avg", "knn/avg", "isolated/avg")
}

// §5.4 — sampling-cost accounting.
func BenchmarkSec54SamplingCost(b *testing.B) {
	runExperiment(b, "sec54cost", "spoiler-share", "sim-hours/mixes")
}

// §6.1 — steady-state outlier frequency (paper: ≈4%).
func BenchmarkSec61Outliers(b *testing.B) {
	runExperiment(b, "sec61outliers", "freq/all")
}

// Extension §8 — expanding database: stale predictor vs. analytically
// scaled knowledge base vs. oracle isolated latencies, at ×1.5 growth.
func BenchmarkExtDatabaseGrowth(b *testing.B) {
	runExperiment(b, "ext-growth", "stale/avg", "scaled/avg", "oracle/avg")
}

// Extension §8 — operator-granularity CQPP: learned QS models vs. the
// analytic per-stage model with zero training samples.
func BenchmarkExtOperatorModel(b *testing.B) {
	runExperiment(b, "ext-opmodel", "qs/avg", "opmodel/avg")
}

// Application §1 — batch scheduling: FIFO vs. SJF vs. interaction-aware
// ordering, measured on the simulator.
func BenchmarkExtBatchScheduling(b *testing.B) {
	runExperiment(b, "ext-batch", "improvement-vs-fifo", "makespan/FIFO", "makespan/Interaction-aware")
}

// Application §1 — predictive admission control on a Poisson stream.
func BenchmarkExtAdmissionControl(b *testing.B) {
	runExperiment(b, "ext-admission",
		"p95-slowdown/Fixed MPL", "p95-slowdown/Predictive SLO",
		"violations/Fixed MPL", "violations/Predictive SLO")
}

// Ablation — which isolated feature transfers the QS slope µ best.
func BenchmarkAblationQSFeatures(b *testing.B) {
	runExperiment(b, "ext-qsfeatures",
		"mre/Isolated latency (paper)", "mre/Spoiler slowdown", "mre/Mean-µ prior")
}

// Ablation — QS model transfer across multiprogramming levels.
func BenchmarkAblationCrossMPL(b *testing.B) {
	runExperiment(b, "ext-crossmpl", "train2/test2", "train2/test5", "train5/test5")
}

// Ablation — prediction error as a function of substrate noise.
func BenchmarkAblationNoise(b *testing.B) {
	runExperiment(b, "ext-noise", "mre/0.0x", "mre/1.0x", "mre/3.0x")
}

// Extension §8 — the resilience layer under injected faults: identity of
// the training data at a 10% transient rate, retries spent at 20%, and the
// coverage a permanent per-template fault leaves behind.
func BenchmarkExtChaos(b *testing.B) {
	runExperiment(b, "ext-chaos",
		"identical/10%", "retries/20%", "coverage/permanent")
}

// BenchmarkAblationSharedScans quantifies the simulator design choice CQI's
// ω/τ terms depend on: the latency of a fully-shared self-mix with
// shared-scan groups enabled vs. disabled. The reported ratio is the
// positive-interaction speedup the buffer pool provides.
func BenchmarkAblationSharedScans(b *testing.B) {
	w := tpcds.NewWorkload()
	spec := w.MustSpec(71)
	run := func(shared bool) float64 {
		cfg := sim.DefaultConfig()
		cfg.SharedScans = shared
		e := sim.NewEngine(cfg)
		res, err := e.RunSteadyState([]sim.QuerySpec{spec, spec},
			sim.SteadyStateOptions{Samples: 3, WarmupSkip: 1})
		if err != nil {
			b.Fatal(err)
		}
		return res.MeanLatency(0)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratio = run(false) / run(true)
	}
	b.ReportMetric(ratio, "shared-scan-speedup")
}

// Micro-benchmarks of the framework's hot paths.

// BenchmarkEnvBuild measures the full training-data collection campaign at
// increasing worker-pool widths (a quick-scale design so one op stays in
// seconds). Output is byte-identical at every width — see
// TestEnvBuildDeterministic — so the sub-benchmarks differ only in
// wall-clock time; the speedup saturates at GOMAXPROCS.
func BenchmarkEnvBuild(b *testing.B) {
	quickOpts := func(workers int) experiments.Options {
		return experiments.Options{
			MPLs:          []int{2, 3},
			LHSRuns:       2,
			SteadySamples: 3,
			IsolatedRuns:  2,
			Seed:          42,
			Workers:       workers,
		}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := quickOpts(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NewEnv(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Observer overhead on the same campaign: a recording observer (every
	// event retained — the worst case) and the metrics aggregator (the
	// production shape behind -metrics-addr). Budget: ≤10% over the
	// unobserved workers=1 row.
	b.Run("workers=1/recording", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := quickOpts(1)
			opts.Observer = obs.NewRecording()
			if _, err := experiments.NewEnv(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=1/metrics", func(b *testing.B) {
		opts := quickOpts(1)
		opts.Observer = obs.NewMetrics()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.NewEnv(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var (
	predOnce  sync.Once
	benchPred *Predictor
	predErr   error
)

// trainedPredictor trains a predictor once per process for the serving
// benchmarks.
func trainedPredictor(b *testing.B) *Predictor {
	b.Helper()
	predOnce.Do(func() {
		var wb *Workbench
		wb, predErr = NewWorkbench(QuickSampling(), WithSeed(42))
		if predErr != nil {
			return
		}
		benchPred, predErr = wb.Train()
		if predErr == nil {
			benchPred.Prime()
		}
	})
	if predErr != nil {
		b.Fatal(predErr)
	}
	return benchPred
}

// BenchmarkPredictKnown is the serving hot path: one known-template
// prediction for an MPL-3 mix. Must report 0 allocs/op.
func BenchmarkPredictKnown(b *testing.B) {
	pred := trainedPredictor(b)
	mix := []int{2, 22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictKnown(71, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictExplain is the blame-decomposition hot path: the same
// prediction as BenchmarkPredictKnown plus the per-neighbor intensity
// and seconds breakdown written into a reused buffer. Must report 0
// allocs/op — explain-enabled serving rides the same guarantee as the
// plain path.
func BenchmarkPredictExplain(b *testing.B) {
	pred := trainedPredictor(b)
	mix := []int{2, 22}
	var buf ExplainBuffer
	if _, err := pred.Explain(&buf, 71, mix); err != nil { // warm the buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Explain(&buf, 71, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictKnownObserved is the same hot path with the metrics
// observer attached: the span bookkeeping costs a few counter increments
// and one histogram insert per call. The unobserved row above is the one
// held at 0 allocs/op.
func BenchmarkPredictKnownObserved(b *testing.B) {
	pred := trainedPredictor(b)
	pred.SetObserver(obs.NewMetrics())
	defer pred.SetObserver(nil)
	mix := []int{2, 22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictKnown(71, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictKnownFeedback is the instrumented feedback path: the
// same prediction as BenchmarkPredictKnown plus folding the observed
// latency into the quality aggregator (rolling stats, error histogram,
// drift detector). Warm trackers allocate nothing, so this row must
// also report 0 allocs/op; the delta against BenchmarkPredictKnown is
// the full cost of quality telemetry.
func BenchmarkPredictKnownFeedback(b *testing.B) {
	pred := trainedPredictor(b)
	pred.SetQuality(NewQuality(DriftConfig{}))
	defer pred.SetQuality(nil)
	mix := []int{2, 22}
	if _, err := pred.Feedback(71, mix, 100); err != nil { // warm the tracker
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Feedback(71, mix, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMixes builds n candidate mixes (MPL 2–3) over the trained template
// pool, deterministically, duplicates included — the shape a scheduler's
// combinatorial candidate generator produces and the batch kernel's
// dedup/sort stage exists for.
func benchMixes(n int) [][]int {
	pool := []int{2, 22, 26, 61, 62, 71}
	mixes := make([][]int, n)
	for i := range mixes {
		a := pool[i%len(pool)]
		if i%3 == 0 {
			mixes[i] = []int{a}
		} else {
			mixes[i] = []int{a, pool[(i/2)%len(pool)]}
		}
	}
	return mixes
}

// BenchmarkPredictBatch is the vectorized batch kernel over a reusable
// buffer — the shape a scheduler probing candidate mixes uses. Every
// sub-benchmark must report 0 allocs/op; the per-mix cost falling as the
// batch grows is the dedup/partial-sum amortization at work.
func BenchmarkPredictBatch(b *testing.B) {
	pred := trainedPredictor(b)
	for _, tc := range []struct {
		name  string
		mixes [][]int
	}{
		{"mixes=4", [][]int{{2}, {2, 22}, {22, 62}, {26, 61}}},
		{"mixes=16", benchMixes(16)},
		{"mixes=64", benchMixes(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var buf PredictBuffer
			if _, err := pred.PredictBatch(&buf, 71, tc.mixes); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pred.PredictBatch(&buf, 71, tc.mixes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedPredict is one shard serving single predictions off the
// shared snapshot: the per-core fast path of the sharded layer. Must
// report 0 allocs/op.
func BenchmarkShardedPredict(b *testing.B) {
	pred := trainedPredictor(b)
	s, err := NewSharded(pred, WithShards(1))
	if err != nil {
		b.Fatal(err)
	}
	sh := s.Acquire()
	mix := []int{2, 22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Predict(71, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedObserve is contention-free feedback ingestion: predict,
// compute the signed error, push into the shard's ring. The periodic
// DrainFeedback (every 512 samples, inside the timed loop) folds the ring
// into the quality aggregator, so the row prices the full ingest+drain
// pipeline. Must report 0 allocs/op.
func BenchmarkShardedObserve(b *testing.B) {
	pred := trainedPredictor(b)
	pred.SetQuality(NewQuality(DriftConfig{}))
	defer pred.SetQuality(nil)
	s, err := NewSharded(pred, WithShards(1), WithFeedbackRing(1024))
	if err != nil {
		b.Fatal(err)
	}
	sh := s.Acquire()
	mix := []int{2, 22}
	for i := 0; i < 600; i++ { // warm the tracker and the drain scratch
		if _, err := sh.Observe(71, mix, 100); err != nil {
			b.Fatal(err)
		}
	}
	s.DrainFeedback()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Observe(71, mix, 100); err != nil {
			b.Fatal(err)
		}
		if i&511 == 511 {
			s.DrainFeedback()
		}
	}
	b.StopTimer()
	s.DrainFeedback()
}

// BenchmarkShardedPredictParallel scales the snapshot across GOMAXPROCS
// shards via RunParallel — the per-core throughput story the sweep driver
// (contender-bench -sweep) measures as a full matrix.
func BenchmarkShardedPredictParallel(b *testing.B) {
	pred := trainedPredictor(b)
	s, err := NewSharded(pred)
	if err != nil {
		b.Fatal(err)
	}
	mix := []int{2, 22}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sh := s.Acquire()
		for pb.Next() {
			if _, err := sh.Predict(71, mix); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCQI measures Eq. 5 for a 4-query mix against the precomputed
// index. Must report 0 allocs/op.
func BenchmarkCQI(b *testing.B) {
	env := fullEnv(b)
	know := env.Know
	know.CQI(71, []int{2}) // build the index outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		know.CQI(71, []int{2, 22, 26, 62})
	}
}

func BenchmarkQSModelFit(b *testing.B) {
	rs := make([]float64, 100)
	cs := make([]float64, 100)
	for i := range rs {
		rs[i] = float64(i) / 100
		cs[i] = 0.8*rs[i] + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitQS(rs, cs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorIsolatedRun(b *testing.B) {
	w := tpcds.NewWorkload()
	e := sim.NewEngine(sim.DefaultConfig())
	spec := w.MustSpec(71)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunIsolated(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorSteadyStateMix(b *testing.B) {
	w := tpcds.NewWorkload()
	e := sim.NewEngine(sim.DefaultConfig())
	mix := []sim.QuerySpec{w.MustSpec(71), w.MustSpec(2), w.MustSpec(62), w.MustSpec(26)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunSteadyState(mix, sim.SteadyStateOptions{Samples: 5, WarmupSkip: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLHSDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lhs.SampleDisjoint(25, 5, 4, int64(i))
	}
}

func BenchmarkKNNSpoilerPrediction(b *testing.B) {
	env := fullEnv(b)
	knn, err := core.NewKNNSpoilerPredictor(env.Know, 3)
	if err != nil {
		b.Fatal(err)
	}
	t := env.Know.MustTemplate(71)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictSpoilerLatency(knn, t, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRE(b *testing.B) {
	obs := make([]float64, 1000)
	pred := make([]float64, 1000)
	for i := range obs {
		obs[i] = float64(i + 1)
		pred[i] = float64(i + 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MRE(obs, pred)
	}
}
