package contender

import (
	"context"
	"io"
	"net/http"
	"time"

	"contender/internal/obs"
	"contender/internal/serve"
)

// Serving facade: the predictor as a network service. One option
// vocabulary (ServeOption) configures every layer of the serving
// stack — NewSharded (the in-process serving set), NewServer (the
// wire-protocol server over it), and Workbench.Serve (the one-call
// path from a trained workbench to a listening service) — so shard
// count, feedback-ring size, request coalescing, and admission control
// are named once and mean the same thing everywhere.
//
// The server speaks the versioned v1 wire schema on two protocols
// backed by the same core: HTTP/JSON (POST /v1/predict,
// /v1/predict_batch, /v1/feedback — mount Handler() beside /metrics)
// and a compact length-prefixed binary protocol (ListenBinary) for
// high-throughput clients. Both produce byte-identical prediction
// payloads for the same requests, and hot-swaps (Sharded.Swap, the
// Lifecycle loop) never block a single serving call.

// ServeOption configures NewSharded, NewServer, and Workbench.Serve.
// Options that do not apply to a layer are ignored by it (WithShards
// configures NewSharded; a Sharded passed to NewServer already has its
// shard count).
type ServeOption func(*serveConfig)

type serveConfig struct {
	shards      int
	ringSize    int
	batchWindow time.Duration
	maxCoalesce int
	maxBatch    int
	borrowWait  time.Duration
	admission   serve.AdmissionConfig
	drainEvery  time.Duration
	observer    Observer
	blame       *obs.Blame
	slowLog     *obs.SlowLog
	haveWindow  bool
}

func buildServeConfig(opts []ServeOption) serveConfig {
	var cfg serveConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithShards sets the serving shard count (default GOMAXPROCS).
func WithShards(n int) ServeOption {
	return func(c *serveConfig) { c.shards = n }
}

// WithFeedbackRing sets the per-shard feedback ring capacity, rounded
// up to a power of two (default 1024).
func WithFeedbackRing(n int) ServeOption {
	return func(c *serveConfig) { c.ringSize = n }
}

// WithBatchWindow enables deadline-bounded request coalescing on the
// server: single predictions arriving within d of each other merge
// into one vectorized batch call. Zero coalesces bursts without a
// timer; a negative d disables coalescing.
func WithBatchWindow(d time.Duration) ServeOption {
	return func(c *serveConfig) { c.batchWindow = d; c.haveWindow = true }
}

// WithMaxCoalesce caps one coalesced batch (default 256).
func WithMaxCoalesce(n int) ServeOption {
	return func(c *serveConfig) { c.maxCoalesce = n }
}

// WithMaxBatch caps the mixes of one predict_batch request (default
// 4096); larger requests answer batch_too_large.
func WithMaxBatch(n int) ServeOption {
	return func(c *serveConfig) { c.maxBatch = n }
}

// WithBorrowWait bounds how long one request (an HTTP handler or a
// binary frame) waits for a free serving shard before answering the
// stable "overloaded" code (default 1s). The wait only engages when
// every shard is busy; it keeps a saturated server shedding load
// instead of parking goroutines.
func WithBorrowWait(d time.Duration) ServeOption {
	return func(c *serveConfig) { c.borrowWait = d }
}

// WithAdmission bounds each binary connection (and the HTTP front as a
// whole) with a token bucket of rate requests/second and burst
// capacity, plus a cap on in-flight requests. Zero disables a check;
// rejected requests answer the stable "overloaded" code (HTTP 429),
// which is transient in the resilience taxonomy: back off and retry.
func WithAdmission(rate float64, burst, maxInflight int) ServeOption {
	return func(c *serveConfig) {
		c.admission = serve.AdmissionConfig{Rate: rate, Burst: burst, MaxInflight: maxInflight}
	}
}

// WithDrainInterval sets how often the server folds buffered feedback
// into the quality aggregator (default 100ms; negative disables the
// loop — call Sharded.DrainFeedback yourself).
func WithDrainInterval(d time.Duration) ServeOption {
	return func(c *serveConfig) { c.drainEvery = d }
}

// WithServeObserver installs an observer on the server: serve.request
// spans and serve.* points. When the observer contains a *Metrics
// (directly or in a Multi), the contender_serve_* metric families
// register on it automatically.
func WithServeObserver(o Observer) ServeOption {
	return func(c *serveConfig) { c.observer = o }
}

// WithServeBlame installs a contention blame aggregator on the server:
// every explained prediction it answers (the wire schema's opt-in
// explain flag) folds its per-neighbor decomposition into b's pairwise
// matrix. Workbench.Serve installs the workbench's own aggregator
// (WithBlame) unless this option overrides it.
func WithServeBlame(b *Blame) ServeOption {
	return func(c *serveConfig) { c.blame = b }
}

// WithSlowLog logs every request slower than threshold to w, one line
// per request (protocol op, payload size, latency, error label),
// measured from admission to reply. A threshold ≤ 0 logs every
// request. The logger serializes writes internally, so w needs no
// extra locking.
func WithSlowLog(w io.Writer, threshold time.Duration) ServeOption {
	return func(c *serveConfig) { c.slowLog = obs.NewSlowLog(w, threshold) }
}

// Server exposes one Sharded serving set over the v1 wire schema.
type Server struct {
	inner   *serve.Server
	sharded *Sharded
}

// NewServer builds a wire-protocol server over a sharded serving set.
// It starts serving when Handler is mounted or ListenBinary is called.
func NewServer(s *Sharded, opts ...ServeOption) (*Server, error) {
	cfg := buildServeConfig(opts)
	window := cfg.batchWindow
	if !cfg.haveWindow {
		window = -1 // coalescing is opt-in: no window option, no batcher
	}
	inner, err := serve.New(s.inner, serve.Config{
		Observer:    cfg.observer,
		Metrics:     obs.FindMetrics(cfg.observer),
		Blame:       cfg.blame,
		SlowLog:     cfg.slowLog,
		MaxBatch:    cfg.maxBatch,
		BatchWindow: window,
		MaxCoalesce: cfg.maxCoalesce,
		BorrowWait:  cfg.borrowWait,
		Admission:   cfg.admission,
		DrainEvery:  cfg.drainEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, sharded: s}, nil
}

// Handler returns the HTTP/JSON front (POST /v1/predict,
// /v1/predict_batch, /v1/feedback) for mounting on any mux — typically
// beside the /metrics and /quality endpoints.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// ListenBinary starts the binary-protocol listener on addr and returns
// the bound address (useful with ":0").
func (s *Server) ListenBinary(addr string) (string, error) { return s.inner.ListenBinary(addr) }

// Sharded returns the serving set behind the server, for hot-swaps and
// feedback draining.
func (s *Server) Sharded() *Sharded { return s.sharded }

// Shutdown stops listeners, drains in-flight requests until ctx
// expires, then severs what remains. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error { return s.inner.Shutdown(ctx) }

// Serve is the one-call serving path: wrap a trained predictor in a
// sharded serving set, stand a server over it, and bind the binary
// protocol on addr (use ":0" for an ephemeral port; the bound address
// is available from BinaryAddr). The workbench's observer instruments
// the server unless WithServeObserver overrides it, the workbench's
// blame aggregator (WithBlame) receives every explained prediction
// unless WithServeBlame overrides it, and the returned
// server shuts down with a 5-second drain when ctx is cancelled. Mount
// Handler() for the HTTP front — Workbench.Serve does not bind it to
// keep the HTTP mux composition (metrics, quality, pprof) in the
// caller's hands.
func (w *Workbench) Serve(ctx context.Context, p *Predictor, addr string, opts ...ServeOption) (*BoundServer, error) {
	cfg := buildServeConfig(opts)
	if o := w.env.Opts.Observer; o != nil && cfg.observer == nil {
		opts = append(opts, WithServeObserver(o))
	}
	if w.blame != nil && cfg.blame == nil {
		opts = append(opts, WithServeBlame(w.blame))
	}
	sharded, err := NewSharded(p, opts...)
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(sharded, opts...)
	if err != nil {
		return nil, err
	}
	bound, err := srv.ListenBinary(addr)
	if err != nil {
		return nil, err
	}
	bs := &BoundServer{Server: srv, addr: bound}
	go func() {
		<-ctx.Done()
		// The drain must outlive the cancelled ctx: detach from its
		// cancellation (keeping values) and bound the drain on its own.
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	return bs, nil
}

// BoundServer is a Server whose binary listener is already bound.
type BoundServer struct {
	*Server
	addr string
}

// BinaryAddr returns the bound binary-protocol address.
func (b *BoundServer) BinaryAddr() string { return b.addr }
