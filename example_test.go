package contender_test

import (
	"fmt"
	"log"
	"strings"
	"time"

	"contender"
)

// Example shows the minimal train→predict loop: profile the bundled
// workload, train, and predict a known template's concurrent latency.
// Predictions are validated structurally (they must land strictly inside
// the template's performance continuum) because exact values depend on
// the simulated host.
func Example() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	latency, err := pred.PredictKnown(71, []int{2})
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := wb.Template(71)
	fmt.Println("prediction above isolated latency:", latency > stats.IsolatedLatency)
	fmt.Println("prediction below spoiler latency:", latency < stats.SpoilerLatency[2])
	// Output:
	// prediction above isolated latency: true
	// prediction below spoiler latency: true
}

// ExamplePredictor_PredictNew demonstrates the constant-time path for an
// ad-hoc template: one isolated execution, then a prediction with a
// KNN-estimated spoiler — no concurrent sampling at all.
func ExamplePredictor_PredictNew() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	plan := &contender.Plan{
		Root: contender.Op(contender.HashAggregate, 2e6, 100,
			contender.Op(contender.HashJoin, 15e6, 110,
				contender.Scan("date_dim", 365, 141),
				contender.Scan("store_sales", 20e6, 132))),
	}
	stats, err := wb.ProfileTemplate(901, plan) // the single isolated run
	if err != nil {
		log.Fatal(err)
	}
	latency, err := pred.PredictNew(stats, []int{71}, contender.SpoilerKNN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("got a positive prediction:", latency > 0)
	fmt.Println("slower than isolation:", latency > stats.IsolatedLatency)
	// Output:
	// got a positive prediction: true
	// slower than isolation: true
}

// ExamplePredictor_CQI shows the Concurrent Query Intensity metric: a mix
// whose members share all of the primary's fact scans has near-zero
// intensity, while disjoint I/O-heavy partners push it toward 1.
func ExamplePredictor_CQI() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	// T71 scans all three sales fact tables; T2's scans are a subset, so
	// its I/O is almost entirely shared with the primary.
	shared := pred.CQI(71, []int{2})
	// T25 spends most of its I/O on store_returns, which T71 does not
	// touch: direct competition for the disk.
	disjoint := pred.CQI(71, []int{25})
	fmt.Println("shared mix is less intense:", shared < disjoint)
	// Output:
	// shared mix is less intense: true
}

// ExamplePredictor_ScheduleBatch orders a query batch with the
// interaction-aware policy and forecasts its completion timeline.
func ExamplePredictor_ScheduleBatch() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	batch := []int{71, 2, 62, 26}
	order, jobs, makespan, err := pred.ScheduleBatch(batch, 2, contender.PolicyInteractionAware)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("order is a permutation:", len(order) == len(batch))
	fmt.Println("every job has a window:", len(jobs) == len(batch))
	fmt.Println("positive makespan:", makespan > 0)
	// Output:
	// order is a permutation: true
	// every job has a window: true
	// positive makespan: true
}

// ExampleTrainFromSystem trains Contender through the System integration
// interface — the path a real-DBMS deployment would take. Here the
// simulator-backed reference implementation stands in for the database.
func ExampleTrainFromSystem() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	sys := wb.System() // implement contender.System for your own DBMS

	res, err := contender.TrainFromSystem(sys, contender.TrainConfig{MPLs: []int{2}})
	if err != nil {
		log.Fatal(err)
	}
	latency, err := res.Predictor.PredictKnown(26, []int{62})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained through the interface:", latency > 0)
	fmt.Println("full coverage:", res.Report.Coverage() == 1)
	// Output:
	// trained through the interface: true
	// full coverage: true
}

// ExampleWithObserver installs a recording observer on the whole
// pipeline: the sampling campaign, model fitting, and — inherited by
// the trained predictor — serving calls. With a single worker the
// recorded event order is fully deterministic.
func ExampleWithObserver() {
	rec := contender.NewRecordingObserver()
	wb, err := contender.NewWorkbench(
		contender.QuickSampling(),
		contender.WithWorkers(1),
		contender.WithObserver(rec),
	)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pred.PredictKnown(71, []int{2}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("campaign span closed:", rec.CountSpan(contender.SpanTrainCampaign) == 2)
	fmt.Println("every template profiled:", rec.CountSpan(contender.SpanTrainProfile) == 2*25)
	fmt.Println("fit span emitted:", rec.CountSpan(contender.SpanTrainFit) == 1)
	fmt.Println("serving span emitted:", rec.CountSpan(contender.SpanServePredictKnown) == 1)
	// Output:
	// campaign span closed: true
	// every template profiled: true
	// fit span emitted: true
	// serving span emitted: true
}

// ExampleWorkbench_MetricsSnapshot aggregates the event stream into
// counters and latency histograms and reads them in-process. The same
// Metrics value implements http.Handler for Prometheus scraping (see
// the -metrics-addr flag of the CLIs).
func ExampleWorkbench_MetricsSnapshot() {
	m := contender.NewMetrics()
	wb, err := contender.NewWorkbench(contender.QuickSampling(), contender.WithObserver(m))
	if err != nil {
		log.Fatal(err)
	}
	snap, ok := wb.MetricsSnapshot()
	if !ok {
		log.Fatal("no metrics observer installed")
	}
	campaigns := snap.Counter(`contender_spans_total{span="train.campaign"}`)
	profileLat := snap.Histogram(`contender_span_duration_seconds{span="train.profile"}`)
	fmt.Println("campaigns completed:", campaigns)
	fmt.Println("profile durations recorded:", profileLat.Count == 25)
	// Output:
	// campaigns completed: 1
	// profile durations recorded: true
}

// ExampleNewSlowLog wires a slow-operation log into training: any span
// at least as slow as the threshold is printed. A zero-duration
// threshold logs everything; production callers pick something like
// 100*time.Millisecond.
func ExampleNewSlowLog() {
	var buf strings.Builder
	slow := contender.NewSlowLog(&buf, time.Hour)
	// Compose it with metrics: both observe the same campaign.
	_, err := contender.NewWorkbench(
		contender.QuickSampling(),
		contender.WithObserver(contender.MultiObserver(slow, contender.NewMetrics())),
	)
	if err != nil {
		log.Fatal(err)
	}
	// The simulated campaign finishes in well under an hour, so nothing
	// crosses the (deliberately unreachable) threshold.
	fmt.Println("slow operations:", strings.Count(buf.String(), "SLOW"))
	// Output:
	// slow operations: 0
}

// ExampleParsePlan shows the compact plan notation for ad-hoc templates.
func ExampleParsePlan() {
	plan, err := contender.ParsePlan(
		"Sort:4e6:100(HashJoin:20e6:110(Scan:item:2e4:294, Scan:catalog_sales:3e6:60))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operators:", plan.Steps())
	// Output:
	// operators: 4
}
