package contender

import (
	"contender/internal/obs"
)

// Blame-attribution facade: install a Blame aggregator with WithBlame
// (workbench path) or WithServeBlame (serving path), stream explained
// predictions through it — the server folds every Explain-flagged
// request in automatically, or feed Predictor.Explain decompositions
// yourself — then read the pairwise matrix with Workbench.BlameSnapshot,
// scrape it from the CLIs' /blame endpoint, or watch the blame.* metric
// families on /metrics.

// Blame aggregates per-neighbor interaction seconds (the decomposition
// Predictor.Explain produces) into a pairwise blame matrix: for every
// (primary, neighbor) template pair, how many predicted seconds of the
// primary's latency the neighbor owns, as an EWMA and a cumulative
// total, plus top-K aggressor and victim rankings. It implements
// http.Handler, serving its report as JSON. Safe for concurrent use;
// the warm Observe path allocates nothing.
type Blame = obs.Blame

// BlameConfig tunes the blame aggregator (EWMA smoothing factor,
// ranking size). The zero value selects the documented defaults.
type BlameConfig = obs.BlameConfig

// BlameReport is a point-in-time snapshot of the blame matrix with its
// aggressor and victim rankings.
type BlameReport = obs.BlameReport

// BlamePair is one (primary, neighbor) cell of a BlameReport.
type BlamePair = obs.BlamePair

// BlameRank is one template's row in a BlameReport ranking.
type BlameRank = obs.BlameRank

// NewBlame returns a blame aggregator with the given configuration
// (zero value: defaults).
func NewBlame(cfg BlameConfig) *Blame { return obs.NewBlame(cfg) }

// WithBlame installs a contention blame aggregator on the workbench:
// servers started with Workbench.Serve inherit it (like the observer),
// so every explained prediction they answer feeds the matrix, and the
// lifecycle loop resets a template's blame rows when it promotes a
// retrained model. Blame aggregation is entirely off the
// uninstrumented prediction path — PredictKnown/PredictBatch never
// consult it.
func WithBlame(b *Blame) Option {
	return func(c *config) { c.blame = b }
}

// BlameSnapshot reports the contention blame accumulated by the
// workbench's aggregator. The second return is false when the
// workbench was built without WithBlame.
func (w *Workbench) BlameSnapshot() (BlameReport, bool) {
	if w.blame == nil {
		return (*Blame)(nil).Report(), false
	}
	return w.blame.Report(), true
}
