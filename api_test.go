package contender

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// The public-API tests share one quick workbench per process.
var (
	wbOnce sync.Once
	wbTest *Workbench
	wbPred *Predictor
	wbErr  error
)

func testWorkbench(t *testing.T) (*Workbench, *Predictor) {
	t.Helper()
	wbOnce.Do(func() {
		wbTest, wbErr = NewWorkbench(QuickSampling(), WithSeed(11))
		if wbErr != nil {
			return
		}
		wbPred, wbErr = wbTest.Train()
	})
	if wbErr != nil {
		t.Fatal(wbErr)
	}
	return wbTest, wbPred
}

func TestWorkbenchTemplates(t *testing.T) {
	wb, _ := testWorkbench(t)
	ids := wb.TemplateIDs()
	if len(ids) != 25 {
		t.Fatalf("%d templates, want 25", len(ids))
	}
	ts, ok := wb.Template(71)
	if !ok {
		t.Fatal("template 71 missing")
	}
	if ts.IsolatedLatency <= 0 || ts.IOFraction <= 0 {
		t.Fatalf("bad stats %+v", ts)
	}
	if wb.TemplateDescription(71) == "" {
		t.Fatal("description missing")
	}
	if wb.TemplateDescription(12345) != "" {
		t.Fatal("unknown template must have empty description")
	}
	if len(wb.Observations(2)) == 0 {
		t.Fatal("no MPL-2 observations")
	}
}

func TestPredictKnownAgainstSimulation(t *testing.T) {
	wb, pred := testWorkbench(t)
	mix := []int{26, 62}
	estimate, err := pred.PredictKnown(mix[0], mix[1:])
	if err != nil {
		t.Fatal(err)
	}
	truth, err := wb.Simulate(mix)
	if err != nil {
		t.Fatal(err)
	}
	relErr := abs(truth[0]-estimate) / truth[0]
	if relErr > 0.5 {
		t.Fatalf("prediction %g vs truth %g: %.0f%% error", estimate, truth[0], 100*relErr)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPredictorAccessors(t *testing.T) {
	_, pred := testWorkbench(t)
	mpls := pred.MPLs()
	if len(mpls) == 0 {
		t.Fatal("no trained MPLs")
	}
	if _, ok := pred.QSModelFor(71, mpls[0]); !ok {
		t.Fatal("QS model for T71 missing")
	}
	if _, ok := pred.QSModelFor(12345, mpls[0]); ok {
		t.Fatal("unknown template must have no model")
	}
	if _, ok := pred.QSModelFor(71, 99); ok {
		t.Fatal("untrained MPL must have no models")
	}
	if pred.CQI(71, []int{2}) < 0 {
		t.Fatal("CQI must be non-negative")
	}
	if pred.Knowledge() == nil {
		t.Fatal("knowledge accessor nil")
	}
}

func TestPredictErrors(t *testing.T) {
	_, pred := testWorkbench(t)
	// Serving failures carry errors.Is-able sentinels so callers can route
	// them (retry, fall back, reject the request) without string matching.
	if _, err := pred.PredictKnown(71, []int{2, 22, 26, 33}); !errors.Is(err, ErrUntrainedMPL) {
		t.Fatalf("untrained MPL: %v, want ErrUntrainedMPL", err)
	}
	if _, err := pred.PredictKnown(12345, []int{2}); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("unknown template: %v, want ErrUnknownTemplate", err)
	}
	if _, err := pred.PredictKnown(71, nil); !errors.Is(err, ErrEmptyMix) {
		t.Fatalf("empty mix: %v, want ErrEmptyMix", err)
	}
	if _, err := pred.TrackProgress(12345); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("TrackProgress on unknown template: %v, want ErrUnknownTemplate", err)
	}
}

func TestAdhocPipeline(t *testing.T) {
	wb, pred := testWorkbench(t)
	plan := &Plan{
		Root: Op(HashAggregate, 1e6, 100,
			Op(HashJoin, 10e6, 110,
				Scan("date_dim", 365, 141),
				Scan("web_sales", 20e6, 158))),
	}
	stats, err := wb.ProfileTemplate(777, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IsolatedLatency <= 0 {
		t.Fatal("profiling produced no latency")
	}
	if !stats.Scans["web_sales"] {
		t.Fatal("fact scan set missing web_sales")
	}
	if stats.Scans["date_dim"] {
		t.Fatal("dimension scans must not be in the CQI scan set")
	}

	// Spoiler prediction (constant-time path).
	sp, err := pred.PredictSpoiler(stats, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= stats.IsolatedLatency {
		t.Fatalf("spoiler %g must exceed isolated %g", sp, stats.IsolatedLatency)
	}

	// End-to-end new-template prediction vs. simulation.
	estimate, err := pred.PredictNew(stats, []int{71}, SpoilerKNN)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := wb.SimulateAdhoc(777, plan, []int{71})
	if err != nil {
		t.Fatal(err)
	}
	relErr := abs(truth-estimate) / truth
	if relErr > 0.6 {
		t.Fatalf("ad-hoc prediction %g vs truth %g: %.0f%% error", estimate, truth, 100*relErr)
	}
}

func TestProfileTemplateErrors(t *testing.T) {
	wb, _ := testWorkbench(t)
	if _, err := wb.ProfileTemplate(1000, &Plan{}); err == nil {
		t.Fatal("expected error for invalid plan")
	}
	if _, err := wb.ProfileTemplate(71, &Plan{Root: Scan("web_sales", 1e6, 158)}); err == nil {
		t.Fatal("expected error for duplicate template id")
	}
}

func TestSimulateErrors(t *testing.T) {
	wb, _ := testWorkbench(t)
	if _, err := wb.Simulate([]int{12345}); err == nil {
		t.Fatal("expected error for unknown template")
	}
	if _, err := wb.SimulateIsolated(12345); err == nil {
		t.Fatal("expected error for unknown template")
	}
	if _, err := wb.SimulateAdhoc(1000, &Plan{Root: Scan("web_sales", 1e6, 158)}, []int{12345}); err == nil {
		t.Fatal("expected error for unknown concurrent template")
	}
}

func TestSimulateIsolated(t *testing.T) {
	wb, _ := testWorkbench(t)
	res, err := wb.SimulateIsolated(62)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.IOFraction() <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestOptionPlumbing(t *testing.T) {
	wb, err := NewWorkbench(
		WithMPLs(2),
		WithLHSRuns(1),
		WithSteadySamples(2),
		WithSeed(5),
		WithHost(DefaultHost()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(wb.Observations(3)) != 0 {
		t.Fatal("MPL 3 must not be sampled")
	}
	if len(wb.Observations(2)) == 0 {
		t.Fatal("MPL 2 must be sampled")
	}
	pred, err := wb.Train()
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.MPLs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("trained MPLs %v, want [2]", got)
	}
}

func TestDeterministicAcrossWorkbenches(t *testing.T) {
	a, err := NewWorkbench(QuickSampling(), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkbench(QuickSampling(), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Template(71)
	tb, _ := b.Template(71)
	if ta.IsolatedLatency != tb.IsolatedLatency {
		t.Fatal("same seed must reproduce identical profiling")
	}
}

func TestTrackProgress(t *testing.T) {
	wb, pred := testWorkbench(t)
	tracker, err := pred.TrackProgress(71)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := wb.Template(71)
	// Run alone for half the isolated latency → ~50% progress.
	if _, err := tracker.Advance(stats.IsolatedLatency/2, nil); err != nil {
		t.Fatal(err)
	}
	if f := tracker.Fraction(); f < 0.45 || f > 0.55 {
		t.Fatalf("fraction %g, want ~0.5", f)
	}
	// Remaining under contention must exceed remaining alone.
	alone, err := tracker.Remaining(nil)
	if err != nil {
		t.Fatal(err)
	}
	contended, err := tracker.Remaining([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if contended <= alone {
		t.Fatalf("contended ETA %g must exceed isolated ETA %g", contended, alone)
	}
	if _, err := pred.TrackProgress(99999); err == nil {
		t.Fatal("unknown template must error")
	}
}

func TestScheduleBatchAPI(t *testing.T) {
	wb, pred := testWorkbench(t)
	batch := []int{71, 2, 62, 26, 22}
	order, jobs, forecast, err := pred.ScheduleBatch(batch, 2, PolicyInteractionAware)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(batch) || len(jobs) != len(batch) {
		t.Fatal("order/forecast size wrong")
	}
	if forecast <= 0 {
		t.Fatal("forecast makespan missing")
	}
	// Validate against the simulator.
	_, measured, err := wb.RunBatch(order, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(measured-forecast) / measured; rel > 0.4 {
		t.Fatalf("forecast %g vs measured %g: %.0f%% off", forecast, measured, 100*rel)
	}
	// ForecastBatch with an explicit order agrees with ScheduleBatch.
	_, span2, err := pred.ForecastBatch(order, 2)
	if err != nil {
		t.Fatal(err)
	}
	if span2 != forecast {
		t.Fatal("ForecastBatch must reproduce the schedule's forecast")
	}
}

func TestComparePolicies(t *testing.T) {
	wb, pred := testWorkbench(t)
	batch := []int{71, 2, 62, 26}
	outcomes, err := ComparePolicies(wb, pred, batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("%d outcomes", len(outcomes))
	}
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i-1].MeasuredMakespan > outcomes[i].MeasuredMakespan {
			t.Fatal("outcomes must be sorted by measured makespan")
		}
	}
	if _, err := ComparePolicies(wb, pred, nil, 2); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := ComparePolicies(wb, pred, []int{99999}, 2); err == nil {
		t.Fatal("unknown template must error")
	}
}

// TestGeneratedAdhocPipeline is a whole-pipeline property check: randomly
// generated, never-before-seen templates are profiled once in isolation
// and predicted with constant-time sampling; every prediction must land in
// a sane band around the simulated truth.
func TestGeneratedAdhocPipeline(t *testing.T) {
	wb, pred := testWorkbench(t)
	var errsSum float64
	const n = 6
	for i := 0; i < n; i++ {
		plan := wb.GenerateAdhocPlan(int64(100 + i))
		id := 5000 + i
		stats, err := wb.ProfileTemplate(id, plan)
		if err != nil {
			t.Fatal(err)
		}
		estimate, err := pred.PredictNew(stats, []int{71}, SpoilerKNN)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := wb.SimulateAdhoc(id, plan, []int{71})
		if err != nil {
			t.Fatal(err)
		}
		rel := abs(truth-estimate) / truth
		if rel > 1.0 {
			t.Errorf("generated template %d: prediction %g vs truth %g (%.0f%% off)", i, estimate, truth, 100*rel)
		}
		// The prediction can never be below the template's isolated latency.
		if estimate < stats.IsolatedLatency*0.99 {
			t.Errorf("generated template %d: prediction %g below isolated %g", i, estimate, stats.IsolatedLatency)
		}
		errsSum += rel
	}
	if avg := errsSum / n; avg > 0.5 {
		t.Errorf("average ad-hoc error %.2f too high", avg)
	}
}

func TestGenerateAdhocPlanDeterministic(t *testing.T) {
	wb, _ := testWorkbench(t)
	a := wb.GenerateAdhocPlan(42)
	b := wb.GenerateAdhocPlan(42)
	if a.String() != b.String() {
		t.Fatal("same seed must generate the same plan")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	_, pred := testWorkbench(t)
	path := t.TempDir() + "/model.json"
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions after reload.
	for _, mix := range [][]int{{71, 2}, {26, 62}, {22, 82}} {
		want, err := pred.PredictKnown(mix[0], mix[1:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.PredictKnown(mix[0], mix[1:])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("mix %v: %g vs %g", mix, got, want)
		}
	}
	// The loaded predictor supports the ad-hoc path too (it carries the
	// whole knowledge base).
	stats, _ := pred.Knowledge().Template(71)
	stats.ID = 999
	stats.SpoilerLatency = map[int]float64{}
	if _, err := loaded.PredictNew(stats, []int{2}, SpoilerKNN); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCQIForStatsAdhoc(t *testing.T) {
	wb, pred := testWorkbench(t)
	plan, err := ParsePlan("HashAggregate:2e6:100(HashJoin:15e6:110(Scan:date_dim:365:141, Scan:web_sales:20e6:158))")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := wb.ProfileTemplate(888, plan)
	if err != nil {
		t.Fatal(err)
	}
	// T62 also scans web_sales: sharing must lower the intensity relative
	// to a disjoint partner (T82's inventory + store_sales scans).
	shared := pred.CQIForStats(stats, []int{62})
	disjoint := pred.CQIForStats(stats, []int{82})
	if shared >= disjoint {
		t.Fatalf("shared %g not below disjoint %g", shared, disjoint)
	}
}

func TestScheduleBatchMPLFallback(t *testing.T) {
	// A predictor trained only at MPL 2 must still schedule a batch at
	// MPL 3 via the nearest-MPL fallback.
	wb, err := NewWorkbench(WithMPLs(2), WithLHSRuns(1), WithSteadySamples(2), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		t.Fatal(err)
	}
	batch := []int{71, 2, 62, 26, 22}
	order, _, span, err := pred.ScheduleBatch(batch, 3, PolicySJF)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(batch) || span <= 0 {
		t.Fatalf("order %v span %g", order, span)
	}
	_, measured, err := wb.RunBatch(order, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(measured-span) / measured; rel > 0.6 {
		t.Fatalf("fallback forecast %g vs measured %g (%.0f%% off)", span, measured, 100*rel)
	}
}

// The deprecated pre-observability surface must keep compiling with its
// original shape. Behavior of the shim is covered by TestTrainFromSimSystem
// and TestDeprecatedShimEquivalence; this pin makes an accidental signature
// change a compile error in this file.
var _ func(System, TrainConfig) (*Predictor, error) = TrainPredictorFromSystem

// And the redesigned path returns the consistent result shape on both the
// plain and the context-first entry points.
var (
	_ func(System, TrainConfig, ...Option) (*TrainResult, error)                  = TrainFromSystem
	_ func(context.Context, System, TrainConfig, ...Option) (*TrainResult, error) = TrainFromSystemContext
)

// The serving facade's unified option vocabulary: NewSharded and
// NewServer share ServeOption, and the pre-facade struct constructor
// survives as a deprecated shim with its original shape. A signature
// change to any of the three is a compile error here.
var (
	_ func(*Predictor, ...ServeOption) (*Sharded, error) = NewSharded
	_ func(*Predictor, ShardOptions) (*Sharded, error)   = NewShardedWithOptions
	_ func(*Sharded, ...ServeOption) (*Server, error)    = NewServer
	_ func(time.Duration) ServeOption                    = WithBorrowWait
)
