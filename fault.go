package contender

import (
	"math"
	"strconv"
	"strings"

	"contender/internal/resilience"
)

// Deterministic chaos for the training pipeline. FaultSystem wraps any
// System with a seed-deterministic fault injector: per call it may fail
// transiently, fail permanently, return a corrupt value, or stall — per
// the configured rates. It powers the fault-injection test matrix and the
// ext-chaos experiment.
//
// Faults are decided and materialized BEFORE the underlying system is
// consulted: a faulted call never reaches the substrate. With a
// deterministic substrate (the bundled simulator shares one RNG stream
// across measurements), this is what makes the acceptance property hold —
// under transient or corrupt faults plus retries, the substrate sees
// exactly the same call sequence as in a fault-free run, so the trained
// predictor is byte-identical.

// FaultConfig parameterizes the injected fault mix: per-call rates for
// transient errors, corrupt values, hangs, and latency spikes, plus
// call-site prefixes that fail permanently (e.g. "isolated/26" kills one
// template, "mix/" kills every steady-state mix). See
// resilience.FaultConfig for field documentation.
type FaultConfig = resilience.FaultConfig

// FaultStats counts what a FaultSystem actually injected.
type FaultStats = resilience.FaultStats

// FaultSystem is a System decorated with deterministic fault injection.
type FaultSystem struct {
	sys System
	inj *resilience.Injector
}

// NewFaultSystem wraps sys with a fault injector. The same (seed, rates)
// produce the same fault schedule on every run.
func NewFaultSystem(sys System, cfg FaultConfig) *FaultSystem {
	return &FaultSystem{sys: sys, inj: resilience.NewInjector(cfg)}
}

// Stats returns the injection counters accumulated so far.
func (f *FaultSystem) Stats() FaultStats { return f.inj.Stats() }

// Templates delegates to the wrapped system (enumeration is never faulted).
func (f *FaultSystem) Templates() []TemplateMeta { return f.sys.Templates() }

// FactTables delegates to the wrapped system.
func (f *FaultSystem) FactTables() []string { return f.sys.FactTables() }

// ScanSeconds measures the table scan, possibly injecting a fault first.
// Corrupt faults surface as a NaN scan time.
func (f *FaultSystem) ScanSeconds(table string) (float64, error) {
	site := "scan/" + table
	switch k := f.inj.Decide(site); k {
	case resilience.FaultTransient, resilience.FaultPermanent:
		return 0, k.Err(site)
	case resilience.FaultCorrupt:
		return math.NaN(), nil
	}
	return f.sys.ScanSeconds(table)
}

// RunIsolated runs the template alone, possibly injecting a fault first.
// Corrupt faults surface as a NaN latency.
func (f *FaultSystem) RunIsolated(id int) (Measurement, error) {
	site := "isolated/" + strconv.Itoa(id)
	switch k := f.inj.Decide(site); k {
	case resilience.FaultTransient, resilience.FaultPermanent:
		return Measurement{}, k.Err(site)
	case resilience.FaultCorrupt:
		return Measurement{LatencySeconds: math.NaN()}, nil
	}
	return f.sys.RunIsolated(id)
}

// RunSpoiler runs the template under the spoiler, possibly injecting a
// fault first. Corrupt faults surface as a negative latency.
func (f *FaultSystem) RunSpoiler(id, mpl int) (Measurement, error) {
	site := "spoiler/" + strconv.Itoa(id) + "/" + strconv.Itoa(mpl)
	switch k := f.inj.Decide(site); k {
	case resilience.FaultTransient, resilience.FaultPermanent:
		return Measurement{}, k.Err(site)
	case resilience.FaultCorrupt:
		return Measurement{LatencySeconds: -1}, nil
	}
	return f.sys.RunSpoiler(id, mpl)
}

// RunMix runs the steady-state mix, possibly injecting a fault first.
// Corrupt faults surface as a wrong-length latency slice.
func (f *FaultSystem) RunMix(mix []int, samples int) ([]float64, error) {
	site := mixSite(mix)
	switch k := f.inj.Decide(site); k {
	case resilience.FaultTransient, resilience.FaultPermanent:
		return nil, k.Err(site)
	case resilience.FaultCorrupt:
		return make([]float64, len(mix)-1), nil
	}
	return f.sys.RunMix(mix, samples)
}

// mixSite names a mix call site, e.g. "mix/7/12/3" — so PermanentSites
// prefixes like "mix/" or "mix/7/" select mixes.
func mixSite(mix []int) string {
	var b strings.Builder
	b.WriteString("mix")
	for _, id := range mix {
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}
