module contender

go 1.22

// No requirements on purpose: the module builds hermetically, offline.
// The static-analysis suite (internal/analysis, cmd/contender-vet)
// would normally pin golang.org/x/tools for go/analysis and
// analysistest; it instead reimplements exactly that API subset
// against the standard library, so the suite ports to the real
// dependency by changing import paths if pinning ever becomes
// possible. See DESIGN.md §9.
