module contender

go 1.22
