package contender

import (
	"context"
	"time"

	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/lifecycle"
)

// Self-healing lifecycle facade: close the drift loop. A workbench built
// with WithQuality feeds prediction feedback into the drift detector
// (Predictor.Feedback, or Shard.Observe + DrainFeedback); Lifecycle
// watches it and, when templates go stale, re-collects ONLY their
// samples, refits, replays a canary holdout, and hot-swaps the candidate
// into the Sharded serving set when the holdout error improved —
// otherwise it rolls back and keeps serving the current model. Promoted
// models persist as new versions in the workbench's store (WithStore).
// A retrain that fails never interrupts serving: the loop degrades,
// cools down, and tries again.

// LifecycleConfig tunes Workbench.Lifecycle. The zero value is a working
// gated loop.
type LifecycleConfig struct {
	// Store overrides the workbench's WithStore store (nil: use it, or
	// run without persistence when the workbench has none).
	Store *KnowledgeStore
	// Retry wraps each re-collection campaign in bounded backoff with
	// quarantine semantics.
	Retry *RetryPolicy
	// Observer receives lifecycle.* events (nil: the workbench's).
	Observer Observer
	// MinImprove is the relative holdout-MRE improvement a candidate must
	// deliver to promote: newMRE <= oldMRE*(1-MinImprove). Zero means
	// "not worse".
	MinImprove float64
	// Cooldown is how many Step calls to idle after a retrain attempt
	// before acting again (default 1).
	Cooldown int
	// CheckpointPath, when set, makes each re-collection campaign
	// resumable across interruptions.
	CheckpointPath string
	// World models the drifted substrate for re-collection and canary
	// replay: it maps a re-measured latency of a stale template (mpl 1
	// for isolated runs) to what the live system now produces. nil is
	// the identity — on a real system the fresh measurements ARE the
	// drifted world; against the simulator a World injects the drift.
	World func(template, mpl int, latency float64) float64
	// DisableCanary skips holdout gating: candidates promote
	// unconditionally. Production loops should keep the canary.
	DisableCanary bool
}

// LifecycleReport describes one control-loop step: the action taken,
// the stale templates, the canary's holdout MREs, and the published
// store version on promotion.
type LifecycleReport = lifecycle.StepReport

// LifecycleAction is the decision a lifecycle step took.
type LifecycleAction = lifecycle.Action

// Lifecycle step actions.
const (
	// LifecycleIdle: no template is stale.
	LifecycleIdle = lifecycle.ActionIdle
	// LifecycleCooldown: stale templates exist but a recent attempt is
	// cooling down.
	LifecycleCooldown = lifecycle.ActionCooldown
	// LifecyclePromoted: the candidate won the canary and is serving.
	LifecyclePromoted = lifecycle.ActionPromoted
	// LifecycleRolledBack: the candidate lost the canary.
	LifecycleRolledBack = lifecycle.ActionRolledBack
	// LifecycleFailed: re-collection or refit errored; the old model
	// keeps serving.
	LifecycleFailed = lifecycle.ActionFailed
)

// Lifecycle is the self-healing control loop over one Sharded serving
// set. Steps serialize internally; serving is never blocked.
type Lifecycle struct {
	inner *lifecycle.Manager
}

// Lifecycle wires the self-healing loop over a sharded serving set built
// from this workbench's models. It requires WithQuality — staleness is
// read from the workbench's drift detector — and uses the workbench's
// store and observer unless the config overrides them.
func (w *Workbench) Lifecycle(s *Sharded, cfg LifecycleConfig) (*Lifecycle, error) {
	world := cfg.World
	collector := lifecycle.CollectorFunc(func(ctx context.Context, stale []int) (*core.Predictor, error) {
		return w.env.Recollect(ctx, experiments.RecollectConfig{
			Templates:      stale,
			World:          world,
			Retry:          cfg.Retry,
			CheckpointPath: cfg.CheckpointPath,
		})
	})
	var holdout lifecycle.HoldoutFunc
	if !cfg.DisableCanary {
		holdout = func(stale []int) []lifecycle.Sample {
			var out []lifecycle.Sample
			for _, mpl := range w.env.MPLs() {
				for _, id := range stale {
					for _, o := range w.env.ObservationsFor(mpl, id) {
						observed := o.Latency
						if world != nil {
							observed = world(o.Primary, mpl, o.Latency)
						}
						out = append(out, lifecycle.Sample{Primary: o.Primary, Concurrent: o.Concurrent, Observed: observed})
					}
				}
			}
			return out
		}
	}
	observer := cfg.Observer
	if observer == nil {
		observer = w.env.Opts.Observer
	}
	st := cfg.Store
	if st == nil {
		st = w.store
	}
	lcfg := lifecycle.Config{
		Quality:    w.quality,
		Blame:      w.blame,
		Collector:  collector,
		Holdout:    holdout,
		Observer:   observer,
		Retry:      cfg.Retry,
		MinImprove: cfg.MinImprove,
		Cooldown:   cfg.Cooldown,
	}
	if st != nil {
		lcfg.Store = st.inner
	}
	m, err := lifecycle.New(s.inner, lcfg)
	if err != nil {
		return nil, err
	}
	return &Lifecycle{inner: m}, nil
}

// Step runs one control-loop iteration: drain feedback, read drift
// states, and — when templates are stale — retrain, canary, and promote
// or roll back. The returned error is non-nil only for context
// cancellation; every other failure degrades gracefully into the report.
func (l *Lifecycle) Step(ctx context.Context) (LifecycleReport, error) {
	return l.inner.Step(ctx)
}

// ForceRetrain runs the retrain → canary → promote/rollback sequence for
// an explicit template set, bypassing drift detection and cooldown.
func (l *Lifecycle) ForceRetrain(ctx context.Context, templates []int) (LifecycleReport, error) {
	return l.inner.ForceRetrain(ctx, templates)
}

// Run steps the loop every interval until ctx is cancelled.
func (l *Lifecycle) Run(ctx context.Context, interval time.Duration) error {
	return l.inner.Run(ctx, interval)
}

// Degraded reports whether the loop is serving a model it has tried and
// failed to replace since the last successful promotion.
func (l *Lifecycle) Degraded() bool { return l.inner.Degraded() }
