package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"contender"
	"contender/internal/experiments"
	"contender/internal/obs"
	"contender/internal/resilience"
)

// runPerf measures the two hot paths this package optimizes — the parallel
// training-data build and the allocation-free serving path — and writes the
// results as machine-readable artifacts (BENCH_envbuild.json and
// BENCH_predict.json) for tracking across commits. The same code paths are
// covered by `go test -bench` in bench_test.go; this mode exists so the
// artifacts can be regenerated without the test toolchain.

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	SecPerOp    float64 `json:"sec_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func record(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		SecPerOp:    r.T.Seconds() / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func hostReport(note string) benchReport {
	return benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note:       note,
	}
}

func writeReport(path string, rep benchReport) error {
	return writeJSONFile(path, rep)
}

// writeJSONFile writes any report as indented JSON and logs the path.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func runPerf(opts experiments.Options) error {
	// Training-data collection at increasing pool widths. The speedup tops
	// out at min(workers, GOMAXPROCS); every width produces byte-identical
	// training data, so only wall-clock time varies.
	envRep := hostReport(fmt.Sprintf(
		"one op = full sampling campaign (MPLs %v, %d LHS designs); identical output at every width",
		opts.MPLs, opts.LHSRuns))
	for _, w := range []int{1, 2, 4, 8} {
		o := opts
		o.Workers = w
		fmt.Fprintf(os.Stderr, "EnvBuild/workers=%d...\n", w)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NewEnv(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		envRep.Benchmarks = append(envRep.Benchmarks, record(fmt.Sprintf("EnvBuild/workers=%d", w), r))
	}
	// Resilience overhead on the same campaign: the retry wrapper alone
	// (no faults — pure plumbing cost), and a 10% transient fault rate
	// whose retries must still produce byte-identical training data.
	retry := resilience.Default()
	retry.Sleep = func(time.Duration) {} // measure work, not backoff waits
	for _, bench := range []struct {
		name string
		rate float64
	}{
		{"EnvBuild/resilient/workers=4", 0},
		{"EnvBuild/chaos=10%/workers=4", 0.10},
	} {
		o := opts
		o.Workers = 4
		o.Retry = &retry
		if bench.rate > 0 {
			o.Faults = &resilience.FaultConfig{
				Seed:          101,
				TransientRate: bench.rate,
				Sleep:         func(time.Duration) {},
			}
		}
		fmt.Fprintf(os.Stderr, "%s...\n", bench.name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NewEnv(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		envRep.Benchmarks = append(envRep.Benchmarks, record(bench.name, r))
	}
	// Observability overhead on the same campaign: the recording observer
	// (every event retained — worst case) and the metrics aggregator that
	// backs -metrics-addr. Acceptance budget: ≤10% over the unobserved
	// workers=1 row.
	for _, bench := range []struct {
		name     string
		observer func() obs.Observer
	}{
		{"EnvBuild/recording/workers=1", func() obs.Observer { return obs.NewRecording() }},
		{"EnvBuild/metrics/workers=1", func() obs.Observer { return obs.NewMetrics() }},
	} {
		o := opts
		o.Workers = 1
		fmt.Fprintf(os.Stderr, "%s...\n", bench.name)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.Observer = bench.observer()
				if _, err := experiments.NewEnv(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		envRep.Benchmarks = append(envRep.Benchmarks, record(bench.name, r))
	}
	if err := writeReport("BENCH_envbuild.json", envRep); err != nil {
		return err
	}

	// Serving path: one trained predictor, measured on the same mixes the
	// CLI defaults to. PredictKnown and CQI must stay at 0 allocs/op.
	fmt.Fprintln(os.Stderr, "training predictor for serving benchmarks...")
	wb, err := contender.NewWorkbench(
		contender.QuickSampling(),
		contender.WithSeed(opts.Seed),
		contender.WithWorkers(opts.Workers),
	)
	if err != nil {
		return err
	}
	pred, err := wb.Train()
	if err != nil {
		return err
	}
	pred.Prime()

	predRep := hostReport("steady-state serving path after Prime(); PredictKnown/CQI target 0 allocs/op")
	mix := []int{2, 22}
	batch := [][]int{{2}, {2, 22}, {22, 62}, {26, 61}}

	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pred.PredictKnown(71, mix); err != nil {
				b.Fatal(err)
			}
		}
	})
	predRep.Benchmarks = append(predRep.Benchmarks, record("PredictKnown", r))

	var buf contender.PredictBuffer
	for _, bc := range []struct {
		name  string
		mixes [][]int
	}{
		{"PredictBatch/mixes=4", batch},
		{"PredictBatch/mixes=16", sweepMixes(16)},
		{"PredictBatch/mixes=64", sweepMixes(64)},
	} {
		mixes := bc.mixes
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pred.PredictBatch(&buf, 71, mixes); err != nil {
					b.Fatal(err)
				}
			}
		})
		predRep.Benchmarks = append(predRep.Benchmarks, record(bc.name, r))
	}

	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred.CQI(71, mix)
		}
	})
	predRep.Benchmarks = append(predRep.Benchmarks, record("CQI", r))

	// The same hot path with the -metrics-addr observer attached: span
	// bookkeeping adds a few atomic increments and a histogram insert.
	pred.SetObserver(contender.NewMetrics())
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pred.PredictKnown(71, mix); err != nil {
				b.Fatal(err)
			}
		}
	})
	pred.SetObserver(nil)
	predRep.Benchmarks = append(predRep.Benchmarks, record("PredictKnown/observed", r))

	// The feedback path: the same prediction plus quality aggregation
	// (rolling stats, error histogram, drift detector). Warm trackers
	// allocate nothing, so this row also targets 0 allocs/op.
	pred.SetQuality(contender.NewQuality(contender.DriftConfig{}))
	if _, err := pred.Feedback(71, mix, 100); err != nil { // warm the tracker
		return err
	}
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pred.Feedback(71, mix, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	pred.SetQuality(nil)
	predRep.Benchmarks = append(predRep.Benchmarks, record("PredictKnown/feedback", r))

	return writeReport("BENCH_predict.json", predRep)
}
