// Command contender-bench regenerates every table and figure of the
// paper's evaluation against the simulated PostgreSQL/TPC-DS substrate and
// prints them in the paper's shape, with the paper's headline numbers
// alongside for comparison.
//
// Usage:
//
//	contender-bench [-experiments table2,fig8] [-mpls 2,3,4,5] [-lhs 4] [-seed 42] [-quick]
//	contender-bench -perf            # micro-benchmarks → BENCH_*.json
//	contender-bench -sweep           # sharded-serving throughput matrix → BENCH_serve_sweep.json
//	contender-bench -checkpoint bench.ckpt   # Ctrl-C-safe: rerunning resumes the campaign
//	contender-bench -cpuprofile cpu.out -memprofile mem.out
//	contender-bench -metrics-addr :9090  # live Prometheus /metrics + /debug/pprof while sampling
//
// -quick shrinks the sampling design (fewer LHS runs, fewer steady-state
// samples) for a fast smoke pass. -workers bounds the sampling worker pool
// (0 = GOMAXPROCS); every width produces identical training data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"contender/internal/cliutil"
	"contender/internal/experiments"
	"contender/internal/obs"
)

func main() {
	var (
		expFlag     = flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
		mplsFlag    = flag.String("mpls", "2,3,4,5", "multiprogramming levels to sample")
		lhsRuns     = flag.Int("lhs", 4, "disjoint LHS designs per MPL ≥ 3")
		samples     = flag.Int("samples", 5, "steady-state samples per stream")
		seed        = flag.Int64("seed", 42, "simulation and sampling seed")
		quick       = flag.Bool("quick", false, "reduced sampling for a fast pass")
		workers     = flag.Int("workers", 0, "sampling worker pool width (0 = GOMAXPROCS)")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		format      = flag.String("format", "table", "output format: table or json")
		charts      = flag.Bool("charts", false, "also render each result as an ASCII bar chart")
		perf        = flag.Bool("perf", false, "run micro-benchmarks and write BENCH_envbuild.json / BENCH_predict.json")
		sweep       = flag.Bool("sweep", false, "run the sharded-serving throughput matrix and write -sweep-out")
		sweepProcs  = flag.String("sweep-procs", "1,2,4", "GOMAXPROCS values for -sweep")
		sweepShards = flag.String("sweep-shards", "", "shard counts for -sweep (default: match each procs value)")
		sweepBatch  = flag.String("sweep-batches", "4,16,64", "batch sizes for -sweep")
		sweepOps    = flag.Int("sweep-ops", 2000, "BatchPredict calls per shard per -sweep cell")
		sweepOut    = flag.String("sweep-out", "BENCH_serve_sweep.json", "output path for the -sweep report")
		checkpoint  = flag.String("checkpoint", "", "checkpoint file for the sampling campaign; an interrupted run (Ctrl-C) resumes from it when rerun with the same flags")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /quality, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		traceOut    = flag.String("trace-out", "", "write the observer event stream as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	if *format != "table" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want table or json)", *format))
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		MPLs:           parseInts(*mplsFlag),
		LHSRuns:        *lhsRuns,
		SteadySamples:  *samples,
		Seed:           *seed,
		Workers:        *workers,
		CheckpointPath: *checkpoint,
	}
	if *quick {
		opts.LHSRuns = 2
		opts.SteadySamples = 3
		opts.IsolatedRuns = 2
	}
	if *metricsAddr != "" {
		m := obs.NewMetrics()
		opts.Observer = m
		bound, stopMetrics, err := cliutil.ServeMetrics(*metricsAddr, m, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /quality, /debug/vars, /debug/pprof)\n", bound)
	}
	var rec *obs.Recording
	if *traceOut != "" {
		rec = obs.NewRecording()
		opts.Observer = obs.Multi(opts.Observer, rec)
	}

	// Ctrl-C cancels the sampling campaign; with -checkpoint the progress
	// so far is already on disk and the next run resumes from it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	var sweepCfg *sweepConfig
	if *sweep {
		sweepCfg = &sweepConfig{
			procs:   parseInts(*sweepProcs),
			shards:  parseInts(*sweepShards),
			batches: parseInts(*sweepBatch),
			ops:     *sweepOps,
			out:     *sweepOut,
		}
	}
	code := run(ctx, opts, *expFlag, *format, *charts, *perf, sweepCfg)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	// Written before os.Exit — defers would not run past it.
	if rec != nil {
		if err := cliutil.WriteTraceFile(*traceOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "contender-bench:", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), *traceOut)
		}
	}
	os.Exit(code)
}

func run(ctx context.Context, opts experiments.Options, expFlag, format string, charts, perf bool, sweep *sweepConfig) int {
	if sweep != nil {
		if err := runSweep(opts, *sweep); err != nil {
			fmt.Fprintln(os.Stderr, "contender-bench:", err)
			return 1
		}
		return 0
	}
	if perf {
		if err := runPerf(opts); err != nil {
			fmt.Fprintln(os.Stderr, "contender-bench:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(os.Stderr, "profiling workload and sampling mixes (MPLs %v, %d LHS runs)...\n", opts.MPLs, opts.LHSRuns)
	start := time.Now()
	env, err := experiments.NewEnvContext(ctx, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "contender-bench: interrupted; sampling progress saved to %s — rerun with the same flags to resume\n", opts.CheckpointPath)
			return 130
		}
		fmt.Fprintln(os.Stderr, "contender-bench:", err)
		return 1
	}
	if r := env.Resilience; r.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "resumed %d completed measurements from %s\n", r.Resumed, opts.CheckpointPath)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v (%.0f simulated hours of sampling)\n",
		time.Since(start).Round(time.Millisecond),
		(env.SimulatedSeconds.Isolated+env.SimulatedSeconds.Spoiler+env.SimulatedSeconds.Mixes)/3600)

	todo := experiments.All()
	if expFlag != "" {
		todo = nil
		for _, id := range strings.Split(expFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "contender-bench: unknown experiment %q (use -list)\n", id)
				return 1
			}
			todo = append(todo, e)
		}
	}

	failed := 0
	var results []*experiments.Result
	for _, e := range todo {
		t0 := time.Now()
		res, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		results = append(results, res)
		if format == "table" {
			fmt.Println(res.Render())
			if charts {
				if c := res.Chart(); c != "" {
					fmt.Println(c)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if format == "json" {
		if err := experiments.NewReport(env, results).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "contender-bench:", err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q: %v", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-bench:", err)
	os.Exit(1)
}
