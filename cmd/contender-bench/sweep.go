package main

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"contender"
	"contender/internal/experiments"
)

// runSweep drives the sharded serving layer through a {GOMAXPROCS ×
// shard-count × batch-size} matrix and writes BENCH_serve_sweep.json.
// One trained predictor serves every cell; each cell runs its shard
// count of serving workers, every worker hammering BatchPredict on its
// own shard for a fixed op count, so the matrix is deterministic in
// everything but wall-clock time. Each row records:
//
//   - predictions/sec (batch size × ops × shards / elapsed) and the
//     speedup against the procs=1/shards=1 row of the same batch size;
//   - allocs/op of a warm shard's BatchPredict (must be 0 — the CI smoke
//     job rejects any non-zero row);
//   - an FNV-1a checksum over the bit patterns of one canonical batch
//     result. The checksum must be identical across every cell of a
//     batch size — predictions must not depend on procs or shards — and
//     the driver exits non-zero if any worker observes a different one.

type sweepConfig struct {
	procs   []int
	shards  []int // empty: match the procs value of each cell
	batches []int
	ops     int
	out     string
}

type sweepRow struct {
	Name              string  `json:"name"`
	Procs             int     `json:"procs"`
	Shards            int     `json:"shards"`
	Batch             int     `json:"batch"`
	OpsPerShard       int     `json:"ops_per_shard"`
	SecPerBatch       float64 `json:"sec_per_batch"`
	PredictionsPerSec float64 `json:"predictions_per_sec"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	Checksum          string  `json:"checksum"`
	SpeedupVs1Proc    float64 `json:"speedup_vs_1proc,omitempty"`
}

type sweepReport struct {
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	NumCPU     int        `json:"num_cpu"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	GoVersion  string     `json:"go_version"`
	Note       string     `json:"note,omitempty"`
	Rows       []sweepRow `json:"rows"`
}

// sweepMixes builds n candidate mixes (MPL 2–3) over the trained
// template pool, duplicates included — the same deterministic generator
// as benchMixes in bench_test.go, so sweep rows and `go test -bench`
// rows price the same work.
func sweepMixes(n int) [][]int {
	pool := []int{2, 22, 26, 61, 62, 71}
	mixes := make([][]int, n)
	for i := range mixes {
		a := pool[i%len(pool)]
		if i%3 == 0 {
			mixes[i] = []int{a}
		} else {
			mixes[i] = []int{a, pool[(i/2)%len(pool)]}
		}
	}
	return mixes
}

// sweepChecksum hashes the bit patterns of a batch result: any float
// divergence between cells, however small, changes it.
func sweepChecksum(res []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range res {
		u := math.Float64bits(v)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

const sweepPrimary = 71

func runSweep(opts experiments.Options, cfg sweepConfig) error {
	if cfg.ops <= 0 {
		return fmt.Errorf("-sweep-ops must be positive")
	}
	if len(cfg.procs) == 0 || len(cfg.batches) == 0 {
		return fmt.Errorf("-sweep-procs and -sweep-batches must be non-empty")
	}

	fmt.Fprintln(os.Stderr, "training predictor for the serve sweep...")
	wb, err := contender.NewWorkbench(
		contender.QuickSampling(),
		contender.WithSeed(opts.Seed),
		contender.WithWorkers(opts.Workers),
	)
	if err != nil {
		return err
	}
	pred, err := wb.Train()
	if err != nil {
		return err
	}
	pred.Prime()

	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	// Canonical results per batch size, computed once single-threaded;
	// every cell must reproduce them bit for bit.
	canonical := make(map[int]string, len(cfg.batches))
	for _, bsz := range cfg.batches {
		var buf contender.PredictBuffer
		res, err := pred.PredictBatch(&buf, sweepPrimary, sweepMixes(bsz))
		if err != nil {
			return err
		}
		canonical[bsz] = sweepChecksum(res)
	}

	rep := sweepReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: origProcs,
		GoVersion:  runtime.Version(),
		Note: fmt.Sprintf(
			"sharded BatchPredict matrix, %d ops/shard; checksums are FNV-1a over result bits and must match within a batch size; speedup_vs_1proc saturates at min(procs, num_cpu)",
			cfg.ops),
	}

	baseline := make(map[int]float64, len(cfg.batches)) // batch → procs=1/shards=1 predictions/sec
	for _, procs := range cfg.procs {
		shardCounts := cfg.shards
		if len(shardCounts) == 0 {
			shardCounts = []int{procs}
		}
		for _, shards := range shardCounts {
			for _, bsz := range cfg.batches {
				row, err := sweepCell(pred, procs, shards, bsz, cfg.ops, canonical[bsz])
				if err != nil {
					return err
				}
				if procs == 1 && shards == 1 {
					baseline[bsz] = row.PredictionsPerSec
				}
				if base, ok := baseline[bsz]; ok && base > 0 {
					row.SpeedupVs1Proc = row.PredictionsPerSec / base
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Fprintf(os.Stderr, "%s: %.0f predictions/sec, %d allocs/op\n",
					row.Name, row.PredictionsPerSec, row.AllocsPerOp)
			}
		}
	}
	runtime.GOMAXPROCS(origProcs)

	return writeJSONFile(cfg.out, rep)
}

// sweepCell measures one matrix cell: `shards` workers, each owning one
// shard, each running `ops` BatchPredict calls at GOMAXPROCS=procs.
func sweepCell(pred *contender.Predictor, procs, shards, batch, ops int, want string) (sweepRow, error) {
	row := sweepRow{
		Name:        fmt.Sprintf("ServeSweep/procs=%d/shards=%d/batch=%d", procs, shards, batch),
		Procs:       procs,
		Shards:      shards,
		Batch:       batch,
		OpsPerShard: ops,
	}
	mixes := sweepMixes(batch)
	s, err := contender.NewSharded(pred, contender.WithShards(shards))
	if err != nil {
		return row, err
	}

	// Warm every shard (scratch sizing, serving-index build) and measure
	// the steady-state allocation count on the first one before the timed
	// section — AllocsPerRun pins GOMAXPROCS to 1, so it must not wrap
	// the parallel phase.
	handles := make([]*contender.Shard, shards)
	for i := range handles {
		handles[i] = s.Acquire()
		if _, err := handles[i].BatchPredict(sweepPrimary, mixes); err != nil {
			return row, err
		}
	}
	row.AllocsPerOp = int64(testing.AllocsPerRun(50, func() {
		if _, err := handles[0].BatchPredict(sweepPrimary, mixes); err != nil {
			panic(err)
		}
	}))

	runtime.GOMAXPROCS(procs)
	var wg sync.WaitGroup
	errs := make([]error, shards)
	start := time.Now()
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := handles[w]
			var res []float64
			for i := 0; i < ops; i++ {
				r, err := sh.BatchPredict(sweepPrimary, mixes)
				if err != nil {
					errs[w] = err
					return
				}
				res = r
			}
			if got := sweepChecksum(res); got != want {
				errs[w] = fmt.Errorf("%s: shard %d checksum %s != canonical %s", row.Name, w, got, want)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}

	row.SecPerBatch = elapsed.Seconds() / float64(ops*shards)
	row.PredictionsPerSec = float64(ops*shards*batch) / elapsed.Seconds()
	row.Checksum = want
	return row, nil
}
