// Command contender-serve exposes a trained predictor as a network
// service speaking the v1 wire schema on two protocols: HTTP/JSON
// (POST /v1/predict, /v1/predict_batch, /v1/feedback, mounted beside
// /metrics and /quality) and the compact length-prefixed binary
// protocol for high-throughput clients.
//
// Usage:
//
//	contender-serve -quick                         # train, serve binary on -addr
//	contender-serve -quick -metrics-addr :9090     # + HTTP front beside /metrics
//	contender-serve -load model.json -addr :7341   # serve a saved snapshot
//	contender-serve -quick -loadgen                # benchmark both protocols,
//	                                               # verify parity, write BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"contender"
	"contender/internal/cliutil"
	"contender/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7341", "binary protocol listen address (use :0 for an ephemeral port)")
		maddr    = flag.String("metrics-addr", "", "HTTP address serving /v1/* beside /metrics, /quality, /blame, /debug/pprof (e.g. :9090)")
		load     = flag.String("load", "", "load a saved predictor snapshot instead of training")
		quick    = flag.Bool("quick", false, "reduced sampling for a fast training pass")
		seed     = flag.Int64("seed", 42, "simulation seed for training")
		workers  = flag.Int("workers", 0, "training worker pool width (0 = GOMAXPROCS)")
		maxMPL   = flag.Int("max-mpl", 3, "train mixes at MPLs up to this (bounds the mix sizes the server can price)")
		shards   = flag.Int("shards", 0, "serving shard count (0 = GOMAXPROCS)")
		ring     = flag.Int("ring", 0, "per-shard feedback ring capacity (0 = default 1024)")
		bwindow  = flag.Duration("batch-window", 0, "coalesce single predictions arriving within this window into one batch call (0 disables)")
		maxCoal  = flag.Int("max-coalesce", 0, "cap one coalesced batch (0 = default 256)")
		maxBatch = flag.Int("max-batch", 0, "cap the mixes of one predict_batch request (0 = default 4096)")
		rate     = flag.Float64("rate", 0, "admission token-bucket rate per connection, requests/s (0 disables)")
		burst    = flag.Int("burst", 0, "admission token-bucket burst (0 = one second of rate)")
		inflight = flag.Int("max-inflight", 0, "admission cap on in-flight requests per connection (0 disables)")
		slowLog  = flag.Duration("slowlog", -1, "log requests slower than this to stderr, admission to reply (0 logs every request; negative disables)")
		blameTop = flag.Int("blame-top", 0, "blame-ranking depth of the /blame report (0 = default 5)")

		loadgen  = flag.Bool("loadgen", false, "run the deterministic load generator against an in-process server and exit")
		lgConns  = flag.Int("loadgen-conns", 2, "loadgen: concurrent binary connections")
		lgBatch  = flag.Int("loadgen-batch", 64, "loadgen: mixes per predict_batch frame")
		lgOps    = flag.Int("loadgen-ops", 2000, "loadgen: batch frames per connection")
		lgSeed   = flag.Int64("loadgen-seed", 7, "loadgen: stream seed (conn i replays seed+i)")
		benchOut = flag.String("bench-out", "BENCH_serve.json", "loadgen: write the benchmark row to this file (empty disables)")
		minRate  = flag.Float64("min-rate", 0, "loadgen: exit non-zero below this many predictions/s (0 disables)")
		note     = flag.String("note", "", "loadgen: free-form note recorded in the benchmark file")
	)
	flag.Parse()

	quality := contender.NewQuality(contender.DriftConfig{})
	metrics := contender.NewMetrics()
	// The server folds every explain-flagged prediction it answers into
	// the blame matrix; /blame serves the report beside /quality.
	blame := contender.NewBlame(contender.BlameConfig{TopK: *blameTop})

	var sopts []contender.ServeOption
	sopts = append(sopts, contender.WithServeBlame(blame))
	if *slowLog >= 0 {
		sopts = append(sopts, contender.WithSlowLog(os.Stderr, *slowLog))
	}
	if *shards > 0 {
		sopts = append(sopts, contender.WithShards(*shards))
	}
	if *ring > 0 {
		sopts = append(sopts, contender.WithFeedbackRing(*ring))
	}
	if *bwindow > 0 {
		sopts = append(sopts, contender.WithBatchWindow(*bwindow))
	}
	if *maxCoal > 0 {
		sopts = append(sopts, contender.WithMaxCoalesce(*maxCoal))
	}
	if *maxBatch > 0 {
		sopts = append(sopts, contender.WithMaxBatch(*maxBatch))
	}
	if *rate > 0 || *inflight > 0 {
		sopts = append(sopts, contender.WithAdmission(*rate, *burst, *inflight))
	}
	sopts = append(sopts, contender.WithServeObserver(metrics))

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	// Obtain a predictor: snapshot load is instant; otherwise train the
	// bundled workload on the simulated host.
	var pred *contender.Predictor
	var pool []int
	if *load != "" {
		var err error
		pred, err = contender.LoadPredictorFile(*load)
		if err != nil {
			fatal(err)
		}
		pred.SetQuality(quality)
		pred.SetObserver(metrics)
	} else {
		fmt.Fprintf(os.Stderr, "training Contender (mixes at MPLs up to %d)...\n", *maxMPL)
		topts := []contender.Option{}
		if *quick {
			topts = append(topts, contender.QuickSampling())
		}
		topts = append(topts,
			contender.WithMPLs(cliutil.MPLsUpTo(*maxMPL)...),
			contender.WithSeed(*seed),
			contender.WithWorkers(*workers),
			contender.WithQuality(quality),
			contender.WithObserver(metrics),
		)
		wb, err := contender.NewWorkbenchContext(ctx, topts...)
		if err != nil {
			fatal(err)
		}
		pred, err = wb.Train()
		if err != nil {
			fatal(err)
		}
		pool = wb.TemplateIDs()
		if *loadgen {
			srv, err := wb.Serve(ctx, pred, "127.0.0.1:0", sopts...)
			if err != nil {
				fatal(err)
			}
			runLoadgen(srv, metrics, quality, blame, pool, loadgenConfig{
				conns: *lgConns, batch: *lgBatch, ops: *lgOps, seed: *lgSeed,
				mixMax: *maxMPL - 1, out: *benchOut, minRate: *minRate, note: *note,
			})
			return
		}
		serveForever(ctx, wb, pred, *addr, *maddr, metrics, quality, blame, sopts)
		return
	}
	if *loadgen {
		fatal(fmt.Errorf("-loadgen needs a trained workbench (drop -load): the generator draws mixes from the trained template pool"))
	}
	// Snapshot path: no workbench, build the stack piecewise.
	sharded, err := contender.NewSharded(pred, sopts...)
	if err != nil {
		fatal(err)
	}
	srv, err := contender.NewServer(sharded, sopts...)
	if err != nil {
		fatal(err)
	}
	bound, err := srv.ListenBinary(*addr)
	if err != nil {
		fatal(err)
	}
	runServer(ctx, srv, bound, *maddr, metrics, quality, blame)
}

// serveForever is the trained-workbench serving path: one
// Workbench.Serve call, then block until interrupted.
func serveForever(ctx context.Context, wb *contender.Workbench, pred *contender.Predictor, addr, maddr string, metrics *contender.Metrics, quality *contender.Quality, blame *contender.Blame, sopts []contender.ServeOption) {
	srv, err := wb.Serve(ctx, pred, addr, sopts...)
	if err != nil {
		fatal(err)
	}
	runServer(ctx, srv.Server, srv.BinaryAddr(), maddr, metrics, quality, blame)
}

// runServer mounts the HTTP front (when -metrics-addr is set), prints
// the bound addresses, and blocks until the context is cancelled; the
// server then drains and exits.
func runServer(ctx context.Context, srv *contender.Server, binaryAddr, maddr string, metrics *contender.Metrics, quality *contender.Quality, blame *contender.Blame) {
	fmt.Fprintf(os.Stderr, "serve: binary protocol on %s\n", binaryAddr)
	if maddr != "" {
		bound, stopHTTP, err := cliutil.ServeMetrics(maddr, metrics, quality, blame,
			cliutil.Mount{Pattern: "/v1/", Handler: srv.Handler()})
		if err != nil {
			fatal(err)
		}
		defer stopHTTP()
		fmt.Fprintf(os.Stderr, "serve: http://%s/v1/predict (also /v1/predict_batch, /v1/feedback, /metrics, /quality, /blame)\n", bound)
	}
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "serve: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "contender-serve: shutdown:", err)
	}
}

type loadgenConfig struct {
	conns, batch, ops int
	seed              int64
	mixMax            int
	out               string
	minRate           float64
	note              string
}

// serveRow is one BENCH_serve.json benchmark row; it embeds the
// loadgen result (predictions/s, checksums, parity) under a stable
// row name.
type serveRow struct {
	Name string `json:"name"`
	serve.LoadgenResult
}

type serveReport struct {
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	NumCPU     int        `json:"num_cpu"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	GoVersion  string     `json:"go_version"`
	Note       string     `json:"note,omitempty"`
	Rows       []serveRow `json:"rows"`
}

// runLoadgen drives both protocol fronts of an in-process server with
// the deterministic generator, verifies binary/HTTP payload parity,
// and writes the benchmark row. Exits non-zero on parity violation or
// a throughput floor miss.
func runLoadgen(srv *contender.BoundServer, metrics *contender.Metrics, quality *contender.Quality, blame *contender.Blame, pool []int, cfg loadgenConfig) {
	httpAddr, stopHTTP, err := cliutil.ServeMetrics("127.0.0.1:0", metrics, quality, blame,
		cliutil.Mount{Pattern: "/v1/", Handler: srv.Handler()})
	if err != nil {
		fatal(err)
	}
	defer stopHTTP()

	res, err := serve.RunLoadgen(serve.LoadgenConfig{
		Addr:     srv.BinaryAddr(),
		HTTPBase: "http://" + httpAddr,
		Conns:    cfg.conns,
		Batch:    cfg.batch,
		Ops:      cfg.ops,
		Seed:     cfg.seed,
		Pool:     pool,
		MixMax:   cfg.mixMax,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: %d predictions in %.3fs over %d conns (batch %d)\n",
		res.Predictions, res.ElapsedSec, res.Conns, res.Batch)
	fmt.Printf("loadgen: %.0f predictions/s (binary protocol)\n", res.PredictionsPerSec)
	fmt.Printf("loadgen: checksum %s, http parity %v\n", res.Checksum, res.Parity)

	if cfg.out != "" {
		rep := serveReport{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Note:       cfg.note,
			Rows:       []serveRow{{Name: "ServeBinaryBatch", LoadgenResult: res}},
		}
		if err := writeJSONFile(cfg.out, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", cfg.out)
	}
	if cfg.minRate > 0 && res.PredictionsPerSec < cfg.minRate {
		fatal(fmt.Errorf("throughput %.0f predictions/s below the -min-rate floor %.0f", res.PredictionsPerSec, cfg.minRate))
	}
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-serve:", err)
	os.Exit(1)
}
