// Command contender-predict trains Contender on the bundled workload and
// predicts the concurrent latency of a template in a user-specified mix,
// comparing the prediction against the simulated ground truth.
//
// Usage:
//
//	contender-predict -primary 71 -with 2,22
//	contender-predict -primary 71 -with 2,22 -adhoc   # treat 71 as unseen
//	contender-predict -save model.json                # train once, save
//	contender-predict -load model.json -primary 26    # reuse without retraining
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"contender"
	"contender/internal/cliutil"
)

func main() {
	var (
		primary  = flag.Int("primary", 71, "template whose latency to predict")
		with     = flag.String("with", "2,22", "comma-separated concurrent template IDs")
		adhoc    = flag.Bool("adhoc", false, "treat the primary as a never-sampled template (constant-time path)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		planDSL  = flag.String("plan", "", "ad-hoc plan in compact notation (implies -adhoc with a synthetic template); see contender.ParsePlan")
		save     = flag.String("save", "", "after training, save the predictor snapshot to this file")
		load     = flag.String("load", "", "load a saved predictor instead of training (skips simulation ground truth)")
		workers  = flag.Int("workers", 0, "training worker pool width (0 = GOMAXPROCS)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file for the training campaign; an interrupted run (Ctrl-C) resumes from it")
		maddr    = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /quality, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		traceOut = flag.String("trace-out", "", "write the observer event stream as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	concurrent, err := cliutil.ParseIDs(*with)
	if err != nil {
		fatal(err)
	}
	mpl := len(concurrent) + 1

	// The quality aggregator receives Feedback for every prediction that
	// has a simulated ground truth, so /quality and the final report line
	// show live accuracy.
	quality := contender.NewQuality(contender.DriftConfig{})

	var metrics *contender.Metrics
	var rec *contender.RecordingObserver
	if *maddr != "" {
		metrics = contender.NewMetrics()
		bound, stopMetrics, err := cliutil.ServeMetrics(*maddr, metrics, quality)
		if err != nil {
			fatal(err)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /quality, /debug/vars, /debug/pprof)\n", bound)
	}
	if *traceOut != "" {
		rec = contender.NewRecordingObserver()
		defer func() {
			if err := cliutil.WriteTraceFile(*traceOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "contender-predict:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), *traceOut)
		}()
	}
	// Compose without typed-nil pointers: a nil *Metrics inside an
	// Observer interface would defeat MultiObserver's nil filtering.
	var parts []contender.Observer
	if metrics != nil {
		parts = append(parts, metrics)
	}
	if rec != nil {
		parts = append(parts, rec)
	}
	observer := contender.MultiObserver(parts...)

	if *load != "" {
		pred, err := contender.LoadPredictorFile(*load)
		if err != nil {
			fatal(err)
		}
		pred.SetObserver(observer)
		pred.SetQuality(quality)
		estimate, err := pred.PredictKnown(*primary, concurrent)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("primary           : T%d (from snapshot)\n", *primary)
		fmt.Printf("concurrent mix    : %v (MPL %d)\n", concurrent, mpl)
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQI(*primary, concurrent))
		fmt.Printf("predicted latency : %9.1f s\n", estimate)
		return
	}

	fmt.Fprintf(os.Stderr, "training Contender (sampling mixes at MPLs up to %d)...\n", mpl)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	topts := []contender.Option{
		contender.WithMPLs(cliutil.MPLsUpTo(mpl)...),
		contender.WithSeed(*seed),
		contender.WithWorkers(*workers),
		contender.WithCheckpoint(*ckpt),
		contender.WithQuality(quality),
	}
	if observer != nil {
		topts = append(topts, contender.WithObserver(observer))
	}
	wb, err := contender.NewWorkbenchContext(ctx, topts...)
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "contender-predict: interrupted; training progress saved to %s — rerun with the same flags to resume\n", *ckpt)
			os.Exit(130)
		}
		fatal(err)
	}
	stop()
	pred, err := wb.Train()
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := pred.SaveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved predictor snapshot to %s\n", *save)
	}

	var stats contender.TemplateStats
	if *planDSL != "" {
		plan, err := contender.ParsePlan(*planDSL)
		if err != nil {
			fatal(err)
		}
		*adhoc = true
		*primary = 9999
		stats, err = wb.ProfileTemplate(*primary, plan)
		if err != nil {
			fatal(err)
		}
	} else {
		var ok bool
		stats, ok = wb.Template(*primary)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", *primary))
		}
	}

	var estimate float64
	if *adhoc {
		// Constant-time path: pretend the template was never sampled under
		// concurrency; only its isolated statistics are available.
		stats.SpoilerLatency = map[int]float64{}
		estimate, err = pred.PredictNew(stats, concurrent, contender.SpoilerKNN)
	} else {
		estimate, err = pred.PredictKnown(*primary, concurrent)
	}
	if err != nil {
		fatal(err)
	}

	var truth []float64
	if *planDSL == "" {
		truth, err = wb.Simulate(append([]int{*primary}, concurrent...))
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("primary           : T%d (%s)\n", *primary, wb.TemplateDescription(*primary))
	fmt.Printf("concurrent mix    : %v (MPL %d)\n", concurrent, mpl)
	fmt.Printf("isolated latency  : %9.1f s\n", stats.IsolatedLatency)
	if *adhoc {
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQIForStats(stats, concurrent))
	} else {
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQI(*primary, concurrent))
	}
	fmt.Printf("predicted latency : %9.1f s\n", estimate)
	if len(truth) > 0 {
		fmt.Printf("simulated truth   : %9.1f s\n", truth[0])
		fmt.Printf("relative error    : %9.1f %%\n", 100*abs(truth[0]-estimate)/truth[0])
		if !*adhoc {
			// Close the loop: feed the observed (simulated) latency back so
			// the quality tracker sees the same error the line above prints.
			if res, err := pred.Feedback(*primary, concurrent, truth[0]); err == nil {
				fmt.Printf("quality state     : %9s (signed error %+.3f)\n", res.State, res.SignedError)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-predict:", err)
	os.Exit(1)
}
