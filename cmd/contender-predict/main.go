// Command contender-predict trains Contender on the bundled workload and
// predicts the concurrent latency of a template in a user-specified mix,
// comparing the prediction against the simulated ground truth.
//
// Usage:
//
//	contender-predict -primary 71 -with 2,22
//	contender-predict -primary 71 -with 2,22 -adhoc   # treat 71 as unseen
//	contender-predict -save model.json                # train once, save
//	contender-predict -load model.json -primary 26    # reuse without retraining
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"contender"
	"contender/internal/cliutil"
)

func main() {
	var (
		primary  = flag.Int("primary", 71, "template whose latency to predict")
		with     = flag.String("with", "2,22", "comma-separated concurrent template IDs")
		adhoc    = flag.Bool("adhoc", false, "treat the primary as a never-sampled template (constant-time path)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		planDSL  = flag.String("plan", "", "ad-hoc plan in compact notation (implies -adhoc with a synthetic template); see contender.ParsePlan")
		save     = flag.String("save", "", "after training, save the predictor snapshot to this file")
		load     = flag.String("load", "", "load a saved predictor instead of training (skips simulation ground truth)")
		workers  = flag.Int("workers", 0, "training worker pool width (0 = GOMAXPROCS)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file for the training campaign; an interrupted run (Ctrl-C) resumes from it")
		maddr    = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /quality, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		traceOut = flag.String("trace-out", "", "write the observer event stream as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
		storeDir = flag.String("store-dir", "", "versioned knowledge store directory: serve the current version when one exists, else train and publish the baseline; corruption is detected and falls back a version")
		autoheal = flag.Bool("autoretrain", false, "run the self-healing lifecycle demo: drift the primary template, detect staleness, re-collect, canary, and promote a new store version (requires training; pairs with -store-dir)")
		quick    = flag.Bool("quick", false, "reduced sampling for a fast training pass")
		blameTop = flag.Int("blame-top", 0, "decompose every prediction in the mix into per-neighbor blame and print the top-N aggressor/victim templates (0 disables; known templates only)")
	)
	flag.Parse()

	concurrent, err := cliutil.ParseIDs(*with)
	if err != nil {
		fatal(err)
	}
	mpl := len(concurrent) + 1

	// The quality aggregator receives Feedback for every prediction that
	// has a simulated ground truth, so /quality and the final report line
	// show live accuracy. The self-heal demo uses a fast-flipping drift
	// detector so a short feedback stream reaches the stale state.
	qcfg := contender.DriftConfig{}
	if *autoheal {
		qcfg = contender.DriftConfig{MinSamples: 4, Delta: 0.05, Lambda: 1, StaleMRE: 0.3, RecoverMRE: 0.1, Window: 4}
	}
	quality := contender.NewQuality(qcfg)

	// The blame aggregator is fed by the explain decompositions behind
	// -blame-top and serves the /blame endpoint beside /quality.
	var blame *contender.Blame
	if *blameTop > 0 {
		blame = contender.NewBlame(contender.BlameConfig{TopK: *blameTop})
	}

	// The versioned store is opened (and recovered) up front so its
	// recovery report prints before anything serves from it.
	var knowStore *contender.KnowledgeStore
	if *storeDir != "" {
		var err error
		knowStore, err = contender.OpenStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		if rep := knowStore.Report(); rep.Recovered() {
			if len(rep.RemovedTemp) > 0 {
				fmt.Fprintf(os.Stderr, "store: swept %d crash-debris temp file(s)\n", len(rep.RemovedTemp))
			}
			if len(rep.CorruptVersions) > 0 {
				fmt.Fprintf(os.Stderr, "store: dropped %d corrupt version(s)\n", len(rep.CorruptVersions))
			}
			if rep.FellBackTo != "" {
				fmt.Fprintf(os.Stderr, "store: fell back to version %.8s\n", rep.FellBackTo)
			}
		}
	}

	var metrics *contender.Metrics
	var rec *contender.RecordingObserver
	if *maddr != "" {
		metrics = contender.NewMetrics()
		bound, stopMetrics, err := cliutil.ServeMetrics(*maddr, metrics, quality, blame)
		if err != nil {
			fatal(err)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /quality, /blame, /debug/vars, /debug/pprof)\n", bound)
	}
	if *traceOut != "" {
		rec = contender.NewRecordingObserver()
		defer func() {
			if err := cliutil.WriteTraceFile(*traceOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "contender-predict:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), *traceOut)
		}()
	}
	// Compose without typed-nil pointers: a nil *Metrics inside an
	// Observer interface would defeat MultiObserver's nil filtering.
	var parts []contender.Observer
	if metrics != nil {
		parts = append(parts, metrics)
	}
	if rec != nil {
		parts = append(parts, rec)
	}
	observer := contender.MultiObserver(parts...)

	if *load != "" {
		pred, err := contender.LoadPredictorFile(*load)
		if err != nil {
			fatal(err)
		}
		pred.SetObserver(observer)
		pred.SetQuality(quality)
		estimate, err := pred.PredictKnown(*primary, concurrent)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("primary           : T%d (from snapshot)\n", *primary)
		fmt.Printf("concurrent mix    : %v (MPL %d)\n", concurrent, mpl)
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQI(*primary, concurrent))
		fmt.Printf("predicted latency : %9.1f s\n", estimate)
		if blame != nil {
			if err := printBlame(pred, blame, *primary, concurrent); err != nil {
				fatal(err)
			}
		}
		return
	}

	// With a populated store, serve the current version instead of
	// retraining (unless the run is a self-heal demo, which needs the
	// workbench to re-collect).
	if knowStore != nil && !*autoheal {
		if _, ok := knowStore.Current(); ok {
			pred, v, err := knowStore.CurrentPredictor()
			if err != nil {
				fatal(err)
			}
			pred.SetObserver(observer)
			pred.SetQuality(quality)
			fmt.Fprintf(os.Stderr, "store: serving version v%d:%.8s (%s)\n", v.Seq, v.Fingerprint, v.Note)
			estimate, err := pred.PredictKnown(*primary, concurrent)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("primary           : T%d (from store v%d)\n", *primary, v.Seq)
			fmt.Printf("concurrent mix    : %v (MPL %d)\n", concurrent, mpl)
			fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQI(*primary, concurrent))
			fmt.Printf("predicted latency : %9.1f s\n", estimate)
			if blame != nil {
				if err := printBlame(pred, blame, *primary, concurrent); err != nil {
					fatal(err)
				}
			}
			return
		}
	}

	fmt.Fprintf(os.Stderr, "training Contender (sampling mixes at MPLs up to %d)...\n", mpl)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	topts := []contender.Option{}
	if *quick {
		topts = append(topts, contender.QuickSampling())
	}
	topts = append(topts,
		contender.WithMPLs(cliutil.MPLsUpTo(mpl)...),
		contender.WithSeed(*seed),
		contender.WithWorkers(*workers),
		contender.WithCheckpoint(*ckpt),
		contender.WithQuality(quality),
	)
	if observer != nil {
		topts = append(topts, contender.WithObserver(observer))
	}
	wb, err := contender.NewWorkbenchContext(ctx, topts...)
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "contender-predict: interrupted; training progress saved to %s — rerun with the same flags to resume\n", *ckpt)
			os.Exit(130)
		}
		fatal(err)
	}
	stop()
	pred, err := wb.Train()
	if err != nil {
		fatal(err)
	}
	if knowStore != nil && !*autoheal {
		if _, ok := knowStore.Current(); !ok {
			v, err := knowStore.Publish(pred, "baseline")
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "store: published baseline version v%d:%.8s\n", v.Seq, v.Fingerprint)
		}
	}
	if *autoheal {
		if err := selfHeal(wb, pred, knowStore, *primary, concurrent); err != nil {
			fatal(err)
		}
		return
	}
	if *save != "" {
		if err := pred.SaveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved predictor snapshot to %s\n", *save)
	}

	var stats contender.TemplateStats
	if *planDSL != "" {
		plan, err := contender.ParsePlan(*planDSL)
		if err != nil {
			fatal(err)
		}
		*adhoc = true
		*primary = 9999
		stats, err = wb.ProfileTemplate(*primary, plan)
		if err != nil {
			fatal(err)
		}
	} else {
		var ok bool
		stats, ok = wb.Template(*primary)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", *primary))
		}
	}

	var estimate float64
	if *adhoc {
		// Constant-time path: pretend the template was never sampled under
		// concurrency; only its isolated statistics are available.
		stats.SpoilerLatency = map[int]float64{}
		estimate, err = pred.PredictNew(stats, concurrent, contender.SpoilerKNN)
	} else {
		estimate, err = pred.PredictKnown(*primary, concurrent)
	}
	if err != nil {
		fatal(err)
	}

	var truth []float64
	if *planDSL == "" {
		truth, err = wb.Simulate(append([]int{*primary}, concurrent...))
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("primary           : T%d (%s)\n", *primary, wb.TemplateDescription(*primary))
	fmt.Printf("concurrent mix    : %v (MPL %d)\n", concurrent, mpl)
	fmt.Printf("isolated latency  : %9.1f s\n", stats.IsolatedLatency)
	if *adhoc {
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQIForStats(stats, concurrent))
	} else {
		fmt.Printf("CQI of the mix    : %9.3f\n", pred.CQI(*primary, concurrent))
	}
	fmt.Printf("predicted latency : %9.1f s\n", estimate)
	if len(truth) > 0 {
		fmt.Printf("simulated truth   : %9.1f s\n", truth[0])
		fmt.Printf("relative error    : %9.1f %%\n", 100*abs(truth[0]-estimate)/truth[0])
		if !*adhoc {
			// Close the loop: feed the observed (simulated) latency back so
			// the quality tracker sees the same error the line above prints.
			if res, err := pred.Feedback(*primary, concurrent, truth[0]); err == nil {
				fmt.Printf("quality state     : %9s (signed error %+.3f)\n", res.State, res.SignedError)
			}
		}
	}
	if blame != nil && !*adhoc {
		if err := printBlame(pred, blame, *primary, concurrent); err != nil {
			fatal(err)
		}
	}
}

// printBlame explains every slot of the full mix against the others
// (the primary and each concurrent template take a turn as the
// explained query), folds the per-neighbor shares into the blame
// matrix, and prints the rankings: which templates steal the most
// predicted seconds from the mix (aggressors) and which lose the most
// (victims). The ranking depth is the aggregator's TopK (-blame-top).
func printBlame(pred *contender.Predictor, blame *contender.Blame, primary int, concurrent []int) error {
	full := append([]int{primary}, concurrent...)
	var buf contender.ExplainBuffer
	for i := range full {
		rest := make([]int, 0, len(full)-1)
		rest = append(rest, full[:i]...)
		rest = append(rest, full[i+1:]...)
		if len(rest) == 0 {
			continue
		}
		if _, err := pred.Explain(&buf, full[i], rest); err != nil {
			return err
		}
		blame.Observe(full[i], buf.Neighbors, buf.Seconds)
	}
	rep := blame.Report()
	fmt.Printf("\nblame attribution across the mix (%d decompositions):\n", rep.Samples)
	fmt.Printf("%-12s %12s %8s\n", "aggressor", "stolen [s]", "shares")
	for _, r := range rep.Aggressors {
		fmt.Printf("T%-11d %12.1f %8d\n", r.Template, r.Seconds, r.Count)
	}
	fmt.Printf("%-12s %12s %8s\n", "victim", "lost [s]", "shares")
	for _, r := range rep.Victims {
		fmt.Printf("T%-11d %12.1f %8d\n", r.Template, r.Seconds, r.Count)
	}
	return nil
}

// selfHeal runs the lifecycle demo: the primary template's substrate
// slows down 1.8×, the drift detector flips it to stale, and one
// control-loop step re-collects just that template, wins the canary, and
// promotes (publishing a new store version when a store is attached).
func selfHeal(wb *contender.Workbench, pred *contender.Predictor, st *contender.KnowledgeStore, victim int, concurrent []int) error {
	const shift = 1.8
	sharded, err := contender.NewSharded(pred, contender.WithShards(1))
	if err != nil {
		return err
	}
	lc, err := wb.Lifecycle(sharded, contender.LifecycleConfig{
		Store: st,
		World: func(id, mpl int, lat float64) float64 {
			if id == victim {
				return lat * shift
			}
			return lat
		},
	})
	if err != nil {
		return err
	}
	if st != nil {
		if v, ok := st.Current(); ok {
			fmt.Fprintf(os.Stderr, "self-heal: baseline version v%d:%.8s\n", v.Seq, v.Fingerprint)
		}
	}

	// Healthy feedback, then the sustained slowdown.
	shard := sharded.Acquire()
	base, err := pred.PredictKnown(victim, concurrent)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if _, err := shard.Observe(victim, concurrent, base); err != nil {
			return err
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := shard.Observe(victim, concurrent, base*shift); err != nil {
			return err
		}
	}
	sharded.DrainFeedback()
	fmt.Fprintf(os.Stderr, "self-heal: drifted T%d by %.1fx over 40 observations\n", victim, shift)

	rep, err := lc.Step(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("self-heal action  : %s (stale %v)\n", rep.Action, rep.Stale)
	if rep.Action == contender.LifecyclePromoted {
		fmt.Printf("canary MRE        : %9.1f %% -> %.1f %%\n", 100*rep.OldMRE, 100*rep.NewMRE)
		if rep.Version.Seq != 0 {
			fmt.Printf("published version : v%d:%.8s (%s)\n", rep.Version.Seq, rep.Version.Fingerprint, rep.Version.Note)
		}
	} else if rep.Err != "" {
		fmt.Printf("detail            : %s\n", rep.Err)
	}
	if st != nil {
		fmt.Printf("store versions    : %d\n", st.Len())
	}
	healed, err := sharded.Acquire().Predict(victim, concurrent)
	if err != nil {
		return err
	}
	fmt.Printf("healed prediction : %9.1f s (was %.1f s before the drift)\n", healed, base)
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-predict:", err)
	os.Exit(1)
}
