// Command contender-sched schedules a batch of TPC-DS templates with
// concurrency-aware admission ordering and validates each policy's
// schedule on the simulated host.
//
// Usage:
//
//	contender-sched -batch 71,33,2,22,26,61 -mpl 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"contender"
	"contender/internal/cliutil"
)

func main() {
	var (
		batchFlag = flag.String("batch", "71,33,2,22,26,61,62,82", "comma-separated template IDs to schedule")
		mpl       = flag.Int("mpl", 2, "multiprogramming level")
		seed      = flag.Int64("seed", 42, "simulation seed")
		timeline  = flag.Bool("timeline", false, "print the winning schedule's forecast timeline")
		workers   = flag.Int("workers", 0, "training worker pool width (0 = GOMAXPROCS)")
		ckpt      = flag.String("checkpoint", "", "checkpoint file for the training campaign; an interrupted run (Ctrl-C) resumes from it")
		maddr     = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /quality, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		traceOut  = flag.String("trace-out", "", "write the observer event stream as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
		storeDir  = flag.String("store-dir", "", "versioned knowledge store directory: schedule with the pinned current version when one exists, else publish the freshly trained model as the baseline")
		blameTop  = flag.Int("blame-top", 0, "decompose the winning schedule's admission groups into per-neighbor blame and print the top-N aggressor/victim templates (0 disables)")
	)
	flag.Parse()

	batch, err := cliutil.ParseIDs(*batchFlag)
	if err != nil {
		fatal(err)
	}
	if len(batch) == 0 {
		fatal(fmt.Errorf("empty batch"))
	}

	var blame *contender.Blame
	if *blameTop > 0 {
		blame = contender.NewBlame(contender.BlameConfig{TopK: *blameTop})
	}

	var metrics *contender.Metrics
	var rec *contender.RecordingObserver
	if *maddr != "" {
		metrics = contender.NewMetrics()
		bound, stopMetrics, err := cliutil.ServeMetrics(*maddr, metrics, nil, blame)
		if err != nil {
			fatal(err)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /quality, /blame, /debug/vars, /debug/pprof)\n", bound)
	}
	if *traceOut != "" {
		rec = contender.NewRecordingObserver()
		defer func() {
			if err := cliutil.WriteTraceFile(*traceOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "contender-sched:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), *traceOut)
		}()
	}
	// Compose without typed-nil pointers: a nil *Metrics inside an
	// Observer interface would defeat MultiObserver's nil filtering.
	var parts []contender.Observer
	if metrics != nil {
		parts = append(parts, metrics)
	}
	if rec != nil {
		parts = append(parts, rec)
	}
	observer := contender.MultiObserver(parts...)

	fmt.Fprintln(os.Stderr, "training Contender...")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	topts := []contender.Option{
		contender.WithMPLs(cliutil.MPLsUpTo(*mpl)...),
		contender.WithSeed(*seed),
		contender.WithWorkers(*workers),
		contender.WithCheckpoint(*ckpt),
	}
	if observer != nil {
		topts = append(topts, contender.WithObserver(observer))
	}
	wb, err := contender.NewWorkbenchContext(ctx, topts...)
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "contender-sched: interrupted; training progress saved to %s — rerun with the same flags to resume\n", *ckpt)
			os.Exit(130)
		}
		fatal(err)
	}
	stop()
	pred, err := wb.Train()
	if err != nil {
		fatal(err)
	}

	// With a store, schedule against the pinned current version (the
	// workbench is still needed for simulated ground truth); publish the
	// fresh model as the baseline when the store is empty.
	if *storeDir != "" {
		st, err := contender.OpenStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		if rep := st.Report(); rep.Recovered() {
			fmt.Fprintf(os.Stderr, "store: recovered (swept %d temp, dropped %d corrupt)\n",
				len(rep.RemovedTemp), len(rep.CorruptVersions))
		}
		if _, ok := st.Current(); ok {
			stored, v, err := st.CurrentPredictor()
			if err != nil {
				fatal(err)
			}
			pred = stored
			fmt.Fprintf(os.Stderr, "store: scheduling with version v%d:%.8s (%s)\n", v.Seq, v.Fingerprint, v.Note)
		} else {
			v, err := st.Publish(pred, "baseline")
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "store: published baseline version v%d:%.8s\n", v.Seq, v.Fingerprint)
		}
	}

	outcomes, err := contender.ComparePolicies(wb, pred, batch, *mpl)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("batch %v at MPL %d\n\n", batch, *mpl)
	fmt.Printf("%-18s  %9s  %9s  %s\n", "policy", "forecast", "measured", "order")
	for _, o := range outcomes {
		fmt.Printf("%-18s  %8.0fs  %8.0fs  %v\n", o.Policy, o.ForecastMakespan, o.MeasuredMakespan, o.Order)
	}
	best := outcomes[0]
	var fifo float64
	for _, o := range outcomes {
		if o.Policy == "FIFO" {
			fifo = o.MeasuredMakespan
		}
	}
	if fifo > 0 {
		fmt.Printf("\nbest policy (%s) saves %.1f%% of the FIFO makespan\n",
			best.Policy, 100*(fifo-best.MeasuredMakespan)/fifo)
	}

	if blame != nil {
		if err := printBlame(pred, blame, best.Order, *mpl); err != nil {
			fatal(err)
		}
	}

	if *timeline {
		jobs, span, err := pred.ForecastBatch(best.Order, *mpl)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nforecast timeline of the %s schedule (makespan %.0f s):\n", best.Policy, span)
		fmt.Printf("%-6s  %9s  %9s  %9s\n", "query", "start", "end", "latency")
		for _, j := range jobs {
			fmt.Printf("T%-5d  %8.0fs  %8.0fs  %8.0fs\n", j.Template, j.Start, j.End, j.Latency())
		}
	}
}

// printBlame decomposes the winning schedule's admission groups —
// consecutive windows of mpl queries, the sets the scheduler admits
// together — with one explain call per group member, folds the shares
// into the blame matrix, and prints the rankings: which templates steal
// the most predicted seconds from their groupmates (aggressors) and
// which lose the most (victims). The ranking depth is the aggregator's
// TopK (-blame-top).
func printBlame(pred *contender.Predictor, blame *contender.Blame, order []int, mpl int) error {
	var buf contender.ExplainBuffer
	for start := 0; start < len(order); start += mpl {
		end := start + mpl
		if end > len(order) {
			end = len(order)
		}
		group := order[start:end]
		for i := range group {
			rest := make([]int, 0, len(group)-1)
			rest = append(rest, group[:i]...)
			rest = append(rest, group[i+1:]...)
			if len(rest) == 0 {
				continue
			}
			if _, err := pred.Explain(&buf, group[i], rest); err != nil {
				return err
			}
			blame.Observe(group[i], buf.Neighbors, buf.Seconds)
		}
	}
	rep := blame.Report()
	fmt.Printf("\nblame attribution across the admission groups (%d decompositions):\n", rep.Samples)
	fmt.Printf("%-12s %12s %8s\n", "aggressor", "stolen [s]", "shares")
	for _, r := range rep.Aggressors {
		fmt.Printf("T%-11d %12.1f %8d\n", r.Template, r.Seconds, r.Count)
	}
	fmt.Printf("%-12s %12s %8s\n", "victim", "lost [s]", "shares")
	for _, r := range rep.Victims {
		fmt.Printf("T%-11d %12.1f %8d\n", r.Template, r.Seconds, r.Count)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-sched:", err)
	os.Exit(1)
}
