// Command contender-vet runs Contender's invariant analyzers over the
// module. It works two ways:
//
//	contender-vet ./...                     # standalone, from the module root
//	go vet -vettool=$(which contender-vet) ./...
//
// The suite enforces the invariants the reproduction rests on:
//
//	nodeterminism  deterministic collection packages stay seed-driven
//	hotpathalloc   //contender:hotpath functions stay allocation-free
//	obsemit        Observer.Event goes through the panic-isolating obs.Emit
//	errtaxonomy    transient/permanent/corrupt error classification
//	ctxplumb       exported ctx-accepting functions plumb ctx through
//	borrowpair     free-list shard borrows release before any blocking call
//	lockblock      no mutex held across a blocking call or observer emission
//	snapshotsafe   atomic snapshot loads are read-only outside priming
//	goroleak       serve/lifecycle goroutines tie to WaitGroup/done/ctx
//	wirecompat     the v1 wire surface matches internal/serve/wire.lock
//
// Suppress a diagnostic with a reasoned allowlist directive:
//
//	//contender:allow nodeterminism -- span durations never reach artifacts
//
// Regenerate the wire contract lock after a deliberate schema change:
//
//	contender-vet -write-wire-lock
//
// Exit status: 0 clean, 1 usage/load failure, 2 diagnostics reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"contender/internal/analysis"
	"contender/internal/analysis/borrowpair"
	"contender/internal/analysis/ctxplumb"
	"contender/internal/analysis/errtaxonomy"
	"contender/internal/analysis/goroleak"
	"contender/internal/analysis/hotpathalloc"
	"contender/internal/analysis/lockblock"
	"contender/internal/analysis/nodeterminism"
	"contender/internal/analysis/obsemit"
	"contender/internal/analysis/snapshotsafe"
	"contender/internal/analysis/wirecompat"
)

// Suite is the full analyzer set, in diagnostic-priority order.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		hotpathalloc.Analyzer,
		obsemit.Analyzer,
		errtaxonomy.Analyzer,
		ctxplumb.Analyzer,
		borrowpair.Analyzer,
		lockblock.Analyzer,
		snapshotsafe.Analyzer,
		goroleak.Analyzer,
		wirecompat.Analyzer,
	}
}

// writeWireLock regenerates internal/serve/wire.lock from the current
// wire declarations.
func writeWireLock(dir string) error {
	pkgs, err := analysis.Load(dir, "./"+wirecompat.ScopedPackage)
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		if !analysis.PathMatches(pkg.PkgPath, wirecompat.ScopedPackage) {
			continue
		}
		if pkg.TypeError != nil {
			return fmt.Errorf("typechecking %s: %w", pkg.PkgPath, pkg.TypeError)
		}
		version, entries, _ := wirecompat.Fingerprint(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if len(entries) == 0 {
			return fmt.Errorf("%s declares no wire surface", pkg.PkgPath)
		}
		path := filepath.Join(pkg.Dir, wirecompat.LockFile)
		if err := os.WriteFile(path, []byte(wirecompat.Render(version, entries)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (schema v%s, %d entries)\n", path, version, len(entries))
		return nil
	}
	return fmt.Errorf("package %s not found under %s", wirecompat.ScopedPackage, dir)
}

func main() {
	analyzers := suite()

	// The go command probes the vettool before passing the real config:
	// -V=full asks for a version stamp, -flags for a JSON description of
	// supported analyzer flags (none). Answer both without touching the
	// real flag set.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			analysis.PrintVersion(os.Stdout, analyzers)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("contender-vet", flag.ExitOnError)
	dir := fs.String("C", ".", "module directory to analyze from")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	wireLock := fs.Bool("write-wire-lock", false, "regenerate internal/serve/wire.lock from the current wire declarations and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: contender-vet [-C dir] [-only names] [-write-wire-lock] [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which contender-vet) ./...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *wireLock {
		if err := writeWireLock(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "contender-vet: -write-wire-lock: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "contender-vet: -only %q matches no analyzer\n", *only)
			os.Exit(1)
		}
		analyzers = filtered
	}

	args := fs.Args()
	if analysis.IsVetConfig(args) {
		// go vet -vettool protocol: one package per invocation, config
		// file as the sole argument.
		os.Exit(analysis.UnitcheckMain(os.Stderr, analyzers, args[0]))
	}

	count, err := analysis.Main(os.Stdout, *dir, analyzers, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "contender-vet: %v\n", err)
		os.Exit(1)
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "contender-vet: %d diagnostic(s)\n", count)
		os.Exit(2)
	}
}
