package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles contender-vet once per test binary into a temp dir.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "contender-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building contender-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module with deliberately injected
// invariant violations in a scoped package.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

var injectedModule = map[string]string{
	"go.mod": "module fake\n\ngo 1.22\n",
	"internal/sim/sim.go": `package sim

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() float64 { return rand.Float64() }
`,
	"internal/experiments/exp.go": `package experiments

import "fmt"

func Leaf(n int) error { return fmt.Errorf("no samples at MPL %d", n) }
`,
}

func TestInjectedViolationsFail(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, injectedModule)

	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on injected violations, got err=%v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	out := stdout.String()
	for _, want := range []string{
		"nodeterminism: call to time.Now",
		"math/rand.Float64 draws from a shared nondeterministic stream",
		"errtaxonomy: fmt.Errorf without %w",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostics missing %q; got:\n%s", want, out)
		}
	}
	// Diagnostics must name the analyzer (the invariant) so CI failures
	// are self-explanatory.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "nodeterminism:") && !strings.Contains(line, "errtaxonomy:") {
			t.Errorf("diagnostic line does not name its analyzer: %q", line)
		}
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //contender:allow nodeterminism -- injected: stamp feeds a log line only
}
`,
	})
	out, err := exec.Command(bin, "-C", dir, "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("want clean run with allow directive, got %v\n%s", err, out)
	}
}

func TestMissingReasonIsNotSuppressible(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //contender:allow nodeterminism
}
`,
	})
	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on reasonless directive, got err=%v\n%s", err, &stdout)
	}
	out := stdout.String()
	if !strings.Contains(out, "directive: //contender:allow directive requires a reason") {
		t.Errorf("missing malformed-directive diagnostic; got:\n%s", out)
	}
	if !strings.Contains(out, "nodeterminism: call to time.Now") {
		t.Errorf("reasonless directive must not suppress the underlying diagnostic; got:\n%s", out)
	}
}

func TestGoVetVettool(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, injectedModule)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("want go vet failure on injected violations, got success:\n%s", out)
	}
	for _, want := range []string{"time.Now", "fmt.Errorf without %w"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q; got:\n%s", want, out)
		}
	}
}

func TestGoVetVettoolCleanModule(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

func Step(seed int64) int64 { return seed*6364136223846793005 + 1442695040888963407 }
`,
	})
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("want clean go vet run, got %v:\n%s", err, out)
	}
}
