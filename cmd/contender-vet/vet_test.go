package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles contender-vet once per test binary into a temp dir.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "contender-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building contender-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module with deliberately injected
// invariant violations in a scoped package.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

var injectedModule = map[string]string{
	"go.mod": "module fake\n\ngo 1.22\n",
	"internal/sim/sim.go": `package sim

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() float64 { return rand.Float64() }
`,
	"internal/experiments/exp.go": `package experiments

import "fmt"

func Leaf(n int) error { return fmt.Errorf("no samples at MPL %d", n) }
`,
}

func TestInjectedViolationsFail(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, injectedModule)

	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on injected violations, got err=%v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	out := stdout.String()
	for _, want := range []string{
		"nodeterminism: call to time.Now",
		"math/rand.Float64 draws from a shared nondeterministic stream",
		"errtaxonomy: fmt.Errorf without %w",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostics missing %q; got:\n%s", want, out)
		}
	}
	// Diagnostics must name the analyzer (the invariant) so CI failures
	// are self-explanatory.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "nodeterminism:") && !strings.Contains(line, "errtaxonomy:") {
			t.Errorf("diagnostic line does not name its analyzer: %q", line)
		}
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //contender:allow nodeterminism -- injected: stamp feeds a log line only
}
`,
	})
	out, err := exec.Command(bin, "-C", dir, "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("want clean run with allow directive, got %v\n%s", err, out)
	}
}

func TestMissingReasonIsNotSuppressible(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //contender:allow nodeterminism
}
`,
	})
	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on reasonless directive, got err=%v\n%s", err, &stdout)
	}
	out := stdout.String()
	if !strings.Contains(out, "directive: //contender:allow directive requires a reason") {
		t.Errorf("missing malformed-directive diagnostic; got:\n%s", out)
	}
	if !strings.Contains(out, "nodeterminism: call to time.Now") {
		t.Errorf("reasonless directive must not suppress the underlying diagnostic; got:\n%s", out)
	}
}

func TestGoVetVettool(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, injectedModule)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("want go vet failure on injected violations, got success:\n%s", out)
	}
	for _, want := range []string{"time.Now", "fmt.Errorf without %w"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q; got:\n%s", want, out)
		}
	}
}

// TestStaticcheckCatchesInjectedSA verifies the shipped
// staticcheck.conf scope: the SA correctness family must fire on an
// injected violation in a serving-stack-shaped package. Skipped when
// the staticcheck binary is not installed (the CI staticcheck job
// installs it; contender-vet's own analyzers cover the repo-specific
// invariants either way).
func TestStaticcheckCatchesInjectedSA(t *testing.T) {
	scPath, err := exec.LookPath("staticcheck")
	if err != nil {
		t.Skip("staticcheck not on PATH; the CI staticcheck job installs it")
	}
	conf, err := os.ReadFile(filepath.Join("..", "..", "staticcheck.conf"))
	if err != nil {
		t.Fatalf("reading repo staticcheck.conf: %v", err)
	}
	dir := writeModule(t, map[string]string{
		"go.mod":           "module fake\n\ngo 1.22\n",
		"staticcheck.conf": string(conf),
		"internal/serve/leak.go": `package serve

import "fmt"

// Frame drops its first assignment unread (SA4006) and mismatches the
// format string (SA5009): both must fail under the shipped config.
func Frame(n int) string {
	s := fmt.Sprintf("frame")
	s = fmt.Sprintf("frame %d %d", n)
	return s
}
`,
	})
	cmd := exec.Command(scPath, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("want staticcheck failure on injected SA violations, got success:\n%s", out)
	}
	if !strings.Contains(string(out), "SA") {
		t.Errorf("staticcheck output names no SA check; got:\n%s", out)
	}
}

// TestBorrowBugRegressionFails reintroduces the idle-connection
// starvation bug the serving layer shipped with: a serve loop that
// holds a borrowed shard across the blocking client read. The suite
// must reject it so the bug class cannot come back.
func TestBorrowBugRegressionFails(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/core/core.go": `package core

type Shard struct{ n int }

func (s *Shard) Predict(primary int, mix []int) float64 { return float64(s.n) }
`,
		"internal/serve/serve.go": `package serve

import (
	"bufio"
	"io"

	"fake/internal/core"
)

type connState struct {
	free  chan *core.Shard
	shard *core.Shard
}

func (st *connState) ensureShard() *core.Shard {
	if st.shard == nil {
		st.shard = <-st.free
	}
	return st.shard
}

func (st *connState) releaseShard() {
	if st.shard != nil {
		st.free <- st.shard
		st.shard = nil
	}
}

// serveConn keeps the previous burst's shard parked across the next
// client read: the reintroduced starvation bug.
func (st *connState) serveConn(br *bufio.Reader) {
	var header [4]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			break
		}
		st.ensureShard().Predict(1, nil)
	}
	st.releaseShard()
}
`,
	})

	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on reintroduced borrow bug, got err=%v\n%s", err, &stdout)
	}
	out := stdout.String()
	if !strings.Contains(out, "borrowpair: loop borrows a shard and blocks") {
		t.Errorf("missing borrowpair starvation diagnostic; got:\n%s", out)
	}
}

// TestWireFieldRemovalFails deletes a locked v1 wire field from the
// source: wirecompat must flag the contract break against wire.lock.
func TestWireFieldRemovalFails(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                 "module fake\n\ngo 1.22\n",
		"internal/serve/wire.go": "package serve\n\nconst Version = 1\n\ntype PredictRequest struct {\n\tPrimary int `json:\"primary\"`\n}\n",
		"internal/serve/wire.lock": `schema v1
const Version untyped int = 1
field PredictRequest.Gone string json:"gone"
field PredictRequest.Primary int json:"primary"
struct PredictRequest
`,
	})

	cmd := exec.Command(bin, "-C", dir, "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on removed wire field, got err=%v\n%s", err, &stdout)
	}
	out := stdout.String()
	if !strings.Contains(out, "wirecompat: wire contract entry removed: field PredictRequest.Gone") {
		t.Errorf("missing wirecompat removal diagnostic; got:\n%s", out)
	}
}

func TestGoVetVettoolCleanModule(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module fake\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

func Step(seed int64) int64 { return seed*6364136223846793005 + 1442695040888963407 }
`,
	})
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("want clean go vet run, got %v:\n%s", err, out)
	}
}
