// Command contender-sim explores the simulated database host: it profiles
// the bundled TPC-DS workload in isolation, under the worst-case spoiler,
// or in an arbitrary concurrent mix, printing the observables Contender
// trains on.
//
// Usage:
//
//	contender-sim                        # profile all templates in isolation
//	contender-sim -spoiler 4             # add spoiler latencies at MPL 4
//	contender-sim -workers 4             # profile templates in parallel
//	contender-sim -mix 71,2,22           # run a steady-state mix
//	contender-sim -plan 71               # print a template's query plan
package main

import (
	"contender/internal/cliutil"
	"contender/internal/obs"
	"contender/internal/sim"
	"contender/internal/tpcds"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
)

func main() {
	var (
		mixFlag  = flag.String("mix", "", "comma-separated template IDs to run as a steady-state mix")
		spoiler  = flag.Int("spoiler", 0, "also measure spoiler latency at this MPL (0 = off)")
		planFlag = flag.Int("plan", 0, "print the query plan of this template and exit")
		seed     = flag.Int64("seed", 1, "simulation seed")
		trace    = flag.Bool("trace", false, "print the execution timeline of a -mix run")
		workers  = flag.Int("workers", 0, "profiling worker pool width (0 = GOMAXPROCS)")
		maddr    = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /quality, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		traceOut = flag.String("trace-out", "", "write the observer event stream as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	var metrics obs.Observer // stays a nil interface unless -metrics-addr is set
	if *maddr != "" {
		m := obs.NewMetrics()
		metrics = m
		bound, stopMetrics, err := cliutil.ServeMetrics(*maddr, m, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /quality, /debug/vars, /debug/pprof)\n", bound)
	}
	if *traceOut != "" {
		rec := obs.NewRecording()
		metrics = obs.Multi(metrics, rec) // bridged sim spans land in both
		defer func() {
			if err := cliutil.WriteTraceFile(*traceOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "contender-sim:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), *traceOut)
		}()
	}

	w := tpcds.NewWorkload()
	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	engine := sim.NewEngine(cfg)

	if *planFlag != 0 {
		t, ok := w.Template(*planFlag)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", *planFlag))
		}
		fmt.Printf("%s — %s\n\n%s", t.Name, t.Description, t.Plan)
		return
	}

	if *mixFlag != "" {
		ids, err := cliutil.ParseIDs(*mixFlag)
		if err != nil {
			fatal(err)
		}
		runMix(w, engine, ids, *trace, metrics)
		return
	}

	profileAll(w, cfg, *seed, *spoiler, *workers, metrics)
}

// fanoutTracer feeds one engine's trace stream to several tracers: the
// -trace timeline recorder and the -metrics-addr bridge can coexist.
type fanoutTracer []sim.Tracer

func (f fanoutTracer) Event(ev sim.TraceEvent) {
	for _, t := range f {
		t.Event(ev)
	}
}

// templateRow is one template's profile, filled in by a worker and printed
// in workload order once every row is ready.
type templateRow struct {
	tpl     tpcds.Template
	spec    sim.QuerySpec
	res     sim.Result
	spoiler float64
	err     error
}

// profileAll measures every template on its own engine, seeded from
// (seed, "template/<id>") exactly like the training-data collector, so the
// printed numbers are identical at every worker count.
func profileAll(w *tpcds.Workload, cfg sim.Config, seed int64, spoilerMPL, workers int, o obs.Observer) {
	templates := w.Templates()
	rows := make([]templateRow, len(templates))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(templates) {
		workers = len(templates)
	}
	if workers < 1 {
		workers = 1
	}

	var wg sync.WaitGroup
	ch := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				row := &rows[idx]
				row.tpl = templates[idx]
				row.spec = w.MustSpec(row.tpl.ID)
				eng := sim.NewEngine(cfg.WithSeed(sim.DeriveSeed(seed, fmt.Sprintf("template/%d", row.tpl.ID))))
				if o != nil {
					// One bridge per engine: the bridge keys its open-span
					// table by stream ID, so engines must not share one.
					eng.SetTracer(obs.NewSimTracer(o))
				}
				row.res, row.err = eng.RunIsolated(row.spec)
				if row.err == nil && spoilerMPL > 1 {
					var sp sim.Result
					sp, row.err = eng.RunWithSpoiler(row.spec, spoilerMPL)
					row.spoiler = sp.Latency
				}
			}
		}()
	}
	for idx := range templates {
		ch <- idx
	}
	close(ch)
	wg.Wait()

	fmt.Printf("%-5s %-34s %10s %8s %9s %7s", "id", "description", "isolated", "I/O %", "ws (GiB)", "scans")
	if spoilerMPL > 1 {
		fmt.Printf("  %12s", fmt.Sprintf("spoiler@%d", spoilerMPL))
	}
	fmt.Println()
	for _, row := range rows {
		if row.err != nil {
			fatal(row.err)
		}
		desc := row.tpl.Description
		if len(desc) > 34 {
			desc = desc[:31] + "..."
		}
		fmt.Printf("%-5d %-34s %9.1fs %7.1f%% %9.2f %7d",
			row.tpl.ID, desc, row.res.Latency, 100*row.res.IOFraction(),
			row.spec.WorkingSetBytes/(1<<30), len(row.tpl.Plan.ScannedTables()))
		if spoilerMPL > 1 {
			fmt.Printf("  %11.1fs", row.spoiler)
		}
		fmt.Println()
	}
}

func runMix(w *tpcds.Workload, engine *sim.Engine, ids []int, trace bool, o obs.Observer) {
	var rec *sim.RecordingTracer
	var tracers fanoutTracer
	if trace {
		rec = &sim.RecordingTracer{}
		tracers = append(tracers, rec)
	}
	if o != nil {
		tracers = append(tracers, obs.NewSimTracer(o))
	}
	if len(tracers) > 0 {
		engine.SetTracer(tracers)
	}
	specs := make([]sim.QuerySpec, len(ids))
	for i, id := range ids {
		s, ok := w.Spec(id)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", id))
		}
		specs[i] = s
	}
	res, err := engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: 5, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("steady-state mix %v (MPL %d), %.0f virtual seconds\n\n", ids, len(ids), res.Duration)
	fmt.Printf("%-5s %10s %10s %10s\n", "id", "mean", "min", "max")
	for i, id := range ids {
		samples := res.Samples[i]
		min, max := samples[0], samples[0]
		for _, s := range samples {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		fmt.Printf("%-5d %9.1fs %9.1fs %9.1fs\n", id, res.MeanLatency(i), min, max)
	}
	if rec != nil {
		fmt.Printf("\nexecution timeline:\n%s", rec.Timeline())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-sim:", err)
	os.Exit(1)
}
