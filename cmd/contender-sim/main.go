// Command contender-sim explores the simulated database host: it profiles
// the bundled TPC-DS workload in isolation, under the worst-case spoiler,
// or in an arbitrary concurrent mix, printing the observables Contender
// trains on.
//
// Usage:
//
//	contender-sim                        # profile all templates in isolation
//	contender-sim -spoiler 4             # add spoiler latencies at MPL 4
//	contender-sim -mix 71,2,22           # run a steady-state mix
//	contender-sim -plan 71               # print a template's query plan
package main

import (
	"contender/internal/cliutil"
	"contender/internal/sim"
	"contender/internal/tpcds"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		mixFlag  = flag.String("mix", "", "comma-separated template IDs to run as a steady-state mix")
		spoiler  = flag.Int("spoiler", 0, "also measure spoiler latency at this MPL (0 = off)")
		planFlag = flag.Int("plan", 0, "print the query plan of this template and exit")
		seed     = flag.Int64("seed", 1, "simulation seed")
		trace    = flag.Bool("trace", false, "print the execution timeline of a -mix run")
	)
	flag.Parse()

	w := tpcds.NewWorkload()
	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	engine := sim.NewEngine(cfg)

	if *planFlag != 0 {
		t, ok := w.Template(*planFlag)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", *planFlag))
		}
		fmt.Printf("%s — %s\n\n%s", t.Name, t.Description, t.Plan)
		return
	}

	if *mixFlag != "" {
		ids, err := cliutil.ParseIDs(*mixFlag)
		if err != nil {
			fatal(err)
		}
		runMix(w, engine, ids, *trace)
		return
	}

	fmt.Printf("%-5s %-34s %10s %8s %9s %7s", "id", "description", "isolated", "I/O %", "ws (GiB)", "scans")
	if *spoiler > 1 {
		fmt.Printf("  %12s", fmt.Sprintf("spoiler@%d", *spoiler))
	}
	fmt.Println()
	for _, tpl := range w.Templates() {
		spec := w.MustSpec(tpl.ID)
		res, err := engine.RunIsolated(spec)
		if err != nil {
			fatal(err)
		}
		desc := tpl.Description
		if len(desc) > 34 {
			desc = desc[:31] + "..."
		}
		fmt.Printf("%-5d %-34s %9.1fs %7.1f%% %9.2f %7d",
			tpl.ID, desc, res.Latency, 100*res.IOFraction(),
			spec.WorkingSetBytes/(1<<30), len(tpl.Plan.ScannedTables()))
		if *spoiler > 1 {
			sp, err := engine.RunWithSpoiler(spec, *spoiler)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %11.1fs", sp.Latency)
		}
		fmt.Println()
	}
}

func runMix(w *tpcds.Workload, engine *sim.Engine, ids []int, trace bool) {
	var rec *sim.RecordingTracer
	if trace {
		rec = &sim.RecordingTracer{}
		engine.SetTracer(rec)
	}
	specs := make([]sim.QuerySpec, len(ids))
	for i, id := range ids {
		s, ok := w.Spec(id)
		if !ok {
			fatal(fmt.Errorf("unknown template %d", id))
		}
		specs[i] = s
	}
	res, err := engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples: 5, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("steady-state mix %v (MPL %d), %.0f virtual seconds\n\n", ids, len(ids), res.Duration)
	fmt.Printf("%-5s %10s %10s %10s\n", "id", "mean", "min", "max")
	for i, id := range ids {
		samples := res.Samples[i]
		min, max := samples[0], samples[0]
		for _, s := range samples {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		fmt.Printf("%-5d %9.1fs %9.1fs %9.1fs\n", id, res.MeanLatency(i), min, max)
	}
	if rec != nil {
		fmt.Printf("\nexecution timeline:\n%s", rec.Timeline())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contender-sim:", err)
	os.Exit(1)
}
