package contender

import (
	"contender/internal/store"
)

// Versioned knowledge store facade: persist every trained model as an
// immutable, content-fingerprinted version under one directory. Open it
// with OpenStore (or wire it into a Workbench with WithStore so the
// lifecycle loop persists promotions automatically). Writes are atomic
// (write-then-rename) and every blob carries a full checksum: killing
// the process mid-publish never leaves the store unreadable, and a
// corrupted current version is detected on open and falls back to the
// newest intact one — see KnowledgeStore.Report for what recovery did.

// StoreVersion identifies one immutable version: a monotonically
// increasing sequence number, the content fingerprint the blob is named
// by, its full checksum, and a human note ("baseline", "retrain T2").
type StoreVersion = store.Version

// StoreReport describes what opening a store had to repair: temp-file
// debris swept, corrupt versions dropped, and the version the store
// fell back to when the current one was damaged.
type StoreReport = store.OpenReport

// Store error sentinels, testable with errors.Is.
var (
	// ErrNoVersions: the store has no published version yet.
	ErrNoVersions = store.ErrNoVersions
	// ErrUnknownVersion: the requested fingerprint is not in the store.
	ErrUnknownVersion = store.ErrUnknownVersion
)

// KnowledgeStore is a versioned, crash-safe repository of predictor
// snapshots. Safe for concurrent use.
type KnowledgeStore struct {
	inner *store.Store
}

// OpenStore opens (or initializes) a versioned store rooted at dir,
// recovering from any crash debris or corruption it finds. Check
// Report afterwards to see whether recovery had to act.
func OpenStore(dir string) (*KnowledgeStore, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &KnowledgeStore{inner: s}, nil
}

// Publish persists the predictor's snapshot as a new version and makes
// it current. Publishing identical content re-points to the existing
// blob (versions are content-addressed), so re-publishing is cheap and
// idempotent on disk.
func (s *KnowledgeStore) Publish(p *Predictor, note string) (StoreVersion, error) {
	return s.inner.Publish(p.inner.Snapshot(), note)
}

// Current returns the serving version, and false when nothing has been
// published yet.
func (s *KnowledgeStore) Current() (StoreVersion, bool) { return s.inner.Current() }

// CurrentPredictor reconstructs a ready predictor from the current
// version.
func (s *KnowledgeStore) CurrentPredictor() (*Predictor, StoreVersion, error) {
	p, v, err := s.inner.CurrentPredictor()
	if err != nil {
		return nil, v, err
	}
	return &Predictor{inner: p}, v, nil
}

// Versions lists the full history, oldest first.
func (s *KnowledgeStore) Versions() []StoreVersion { return s.inner.Versions() }

// Rollback re-points current to the newest earlier version with
// different content and returns it.
func (s *KnowledgeStore) Rollback() (StoreVersion, error) { return s.inner.Rollback() }

// Report describes the recovery work the last open performed.
func (s *KnowledgeStore) Report() StoreReport { return s.inner.Report() }

// Len returns the number of versions in the history.
func (s *KnowledgeStore) Len() int { return s.inner.Len() }

// WithStore attaches a versioned knowledge store rooted at dir to the
// workbench: Workbench.Store exposes it, and Workbench.Lifecycle
// persists every promoted model into it (publishing the baseline first,
// so rollback always has somewhere to land). The directory is created
// and recovered at NewWorkbench time.
func WithStore(dir string) Option {
	return func(c *config) { c.storeDir = dir }
}

// Store returns the knowledge store attached with WithStore, and false
// when the workbench was built without one.
func (w *Workbench) Store() (*KnowledgeStore, bool) {
	if w.store == nil {
		return nil, false
	}
	return w.store, true
}
