package contender

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestStoreFacadeRoundtrip publishes a trained predictor through the
// facade store, reopens the directory cold, and checks the reloaded
// version predicts identically.
func TestStoreFacadeRoundtrip(t *testing.T) {
	_, pred := testWorkbench(t)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Current(); ok {
		t.Fatal("fresh store has a current version")
	}
	if _, _, err := st.CurrentPredictor(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("empty store error = %v, want ErrNoVersions", err)
	}
	v, err := st.Publish(pred, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq != 1 || v.Fingerprint == "" {
		t.Fatalf("published version: %+v", v)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Report().Recovered() {
		t.Fatalf("clean reopen reported recovery: %+v", st2.Report())
	}
	loaded, v2, err := st2.CurrentPredictor()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Fatalf("reloaded version %+v, want %+v", v2, v)
	}
	want, err := pred.PredictKnown(71, []int{2, 22})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictKnown(71, []int{2, 22})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-got) > 1e-12 {
		t.Fatalf("reloaded prediction %g, want %g", got, want)
	}
}

// TestWorkbenchLifecycleHeals closes the public-API loop: WithQuality +
// WithStore, drift a template via shard feedback, and let
// Workbench.Lifecycle re-collect, canary, promote, and persist.
func TestWorkbenchLifecycleHeals(t *testing.T) {
	q := NewQuality(DriftConfig{MinSamples: 4, Delta: 0.05, Lambda: 1, StaleMRE: 0.3, RecoverMRE: 0.1, Window: 4})
	dir := t.TempDir()
	wb, err := NewWorkbench(quickObsOptions(WithQuality(q), WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wb.Store(); !ok {
		t.Fatal("WithStore did not attach a store")
	}
	pred, err := wb.Train()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(pred, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}

	const victim, shift = 2, 1.8
	lc, err := wb.Lifecycle(sh, LifecycleConfig{
		World: func(id, mpl int, lat float64) float64 {
			if id == victim {
				return lat * shift
			}
			return lat
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wiring the lifecycle published the baseline version.
	st, _ := wb.Store()
	if st.Len() != 1 {
		t.Fatalf("store has %d versions after wiring, want 1 (baseline)", st.Len())
	}

	// Healthy traffic, then the victim's substrate slows down shift×.
	shard := sh.Acquire()
	feed := func(factor float64, n int) {
		t.Helper()
		base, err := pred.PredictKnown(victim, []int{22})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := shard.Observe(victim, []int{22}, base*factor); err != nil {
				t.Fatal(err)
			}
		}
		sh.DrainFeedback()
	}
	feed(1.0, 10)
	rep, err := lc.Step(context.Background())
	if err != nil || rep.Action != LifecycleIdle {
		t.Fatalf("healthy step = %+v, %v; want idle", rep, err)
	}
	feed(shift, 40)

	rep, err = lc.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != LifecyclePromoted {
		t.Fatalf("step = %+v, want promoted", rep)
	}
	if len(rep.Stale) != 1 || rep.Stale[0] != victim {
		t.Fatalf("stale = %v, want [%d]", rep.Stale, victim)
	}
	if rep.NewMRE >= rep.OldMRE {
		t.Fatalf("canary did not improve: old %g new %g", rep.OldMRE, rep.NewMRE)
	}
	if rep.Version.Seq != 2 {
		t.Fatalf("promoted version %+v, want seq 2", rep.Version)
	}
	if st.Len() != 2 {
		t.Fatalf("store has %d versions after promotion, want 2", st.Len())
	}
	if lc.Degraded() {
		t.Fatal("degraded after a successful promotion")
	}
	// The healed model prices the victim's drifted world.
	healed, err := sh.Acquire().Predict(victim, []int{22})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := pred.PredictKnown(victim, []int{22})
	if err != nil {
		t.Fatal(err)
	}
	if healed <= orig {
		t.Fatalf("healed prediction %g not above pre-drift %g", healed, orig)
	}
}

// TestWorkbenchLifecycleNeedsQuality: the loop cannot run without the
// drift detector WithQuality installs.
func TestWorkbenchLifecycleNeedsQuality(t *testing.T) {
	wb, pred := testWorkbench(t)
	sh, err := NewSharded(pred, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wb.Lifecycle(sh, LifecycleConfig{}); err == nil {
		t.Fatal("Lifecycle accepted a workbench without WithQuality")
	}
}
