package contender

import "contender/internal/core"

// Sharded serving facade: wrap a trained Predictor in per-core serving
// shards sharing one immutable snapshot. Serving workers each Acquire a
// Shard and use it exclusively — predictions read the snapshot lock-free,
// batch scratch is per-shard, and Observe buffers feedback in a per-shard
// ring instead of touching the quality aggregator. Retraining swaps in a
// new predictor atomically (Swap) without blocking a single serving call;
// a maintenance loop periodically folds buffered feedback into the
// quality aggregator with DrainFeedback.

// ShardOptions is the pre-ServeOption configuration struct, kept for
// NewShardedWithOptions.
//
// Deprecated: use ServeOption (WithShards, WithFeedbackRing) with
// NewSharded instead; the struct remains only so existing callers keep
// compiling.
type ShardOptions = core.ShardOptions

// Shard is one serving replica's handle: Predict, BatchPredict, and
// Observe, each allocation-free once warm. A shard must be used by one
// goroutine at a time.
type Shard = core.Shard

// Sharded fans one predictor snapshot out to per-core serving shards.
type Sharded struct {
	inner *core.Sharded
}

// NewSharded wraps a trained predictor for sharded serving, priming its
// indexes so no serving call pays construction costs. It shares the
// ServeOption vocabulary with NewServer and Workbench.Serve; the
// relevant options here are WithShards and WithFeedbackRing.
func NewSharded(p *Predictor, opts ...ServeOption) (*Sharded, error) {
	cfg := buildServeConfig(opts)
	return NewShardedWithOptions(p, ShardOptions{Shards: cfg.shards, RingSize: cfg.ringSize})
}

// NewShardedWithOptions is NewSharded with the pre-facade options
// struct.
//
// Deprecated: use NewSharded with ServeOption values instead.
func NewShardedWithOptions(p *Predictor, opts ShardOptions) (*Sharded, error) {
	s, err := core.NewSharded(p.inner, opts)
	if err != nil {
		return nil, err
	}
	return &Sharded{inner: s}, nil
}

// Acquire hands out a shard round-robin; a serving worker acquires one at
// startup and keeps it for its lifetime.
func (s *Sharded) Acquire() *Shard { return s.inner.Acquire() }

// NumShards returns the number of serving shards.
func (s *Sharded) NumShards() int { return s.inner.NumShards() }

// Snapshot returns the predictor currently serving. Treat it as
// read-only; it may be retired by a concurrent Swap at any time.
func (s *Sharded) Snapshot() *Predictor {
	return &Predictor{inner: s.inner.Snapshot()}
}

// Swap atomically installs a freshly trained (or snapshot-loaded)
// predictor and returns the previous one. In-flight predictions finish on
// the old snapshot; new calls see the new one.
func (s *Sharded) Swap(p *Predictor) (*Predictor, error) {
	old, err := s.inner.Swap(p.inner)
	if err != nil {
		return nil, err
	}
	return &Predictor{inner: old}, nil
}

// DrainFeedback folds every buffered Observe sample into the current
// snapshot's quality aggregator (emitting the same quality.* points
// Feedback would) and returns the number of samples drained.
func (s *Sharded) DrainFeedback() int { return s.inner.DrainFeedback() }

// FeedbackDropped returns how many feedback samples were dropped because
// a shard's ring was full at Observe time.
func (s *Sharded) FeedbackDropped() uint64 { return s.inner.FeedbackDropped() }
