package contender

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
)

// Training checkpoints. A sampling campaign against a real system is hours
// of measurement; TrainConfig.CheckpointPath makes it resumable. The
// checkpoint records every RAW measurement keyed by its call site
// ("scan/<table>", "isolated/<id>/<run>", "spoiler/<id>/<mpl>",
// "mix/<mpl>/<index>") plus the quarantine decisions taken so far. On
// resume, recorded sites are replayed instead of re-measured and the
// remaining sites run as usual; because averaging and model fitting
// consume the same raw values through the same code, a resumed campaign
// produces a predictor byte-identical to an uninterrupted one.

// trainCheckpointVersion guards against loading incompatible files.
const trainCheckpointVersion = 1

type trainCheckpointState struct {
	Version     int                    `json:"version"`
	Fingerprint string                 `json:"fingerprint"`
	Scans       map[string]float64     `json:"scans,omitempty"`
	Isolated    map[string]Measurement `json:"isolated,omitempty"`
	Spoilers    map[string]float64     `json:"spoilers,omitempty"`
	Mixes       map[string][]float64   `json:"mixes,omitempty"`
	Quarantined []QuarantineRecord     `json:"quarantined,omitempty"`
}

// trainCheckpoint is the write-through persistence of a campaign in
// flight: every completed measurement is flushed to disk atomically
// (temp file + rename), so an interrupt at any point loses at most the
// measurement in progress.
type trainCheckpoint struct {
	path  string
	state trainCheckpointState
}

// loadTrainCheckpoint opens (or initializes) the checkpoint at path. A
// missing file starts a fresh campaign; an existing file must carry the
// same config fingerprint, otherwise resuming would silently mix
// incompatible sampling designs.
func loadTrainCheckpoint(path, fingerprint string) (*trainCheckpoint, error) {
	c := &trainCheckpoint{path: path}
	c.state = trainCheckpointState{
		Version:     trainCheckpointVersion,
		Fingerprint: fingerprint,
		Scans:       map[string]float64{},
		Isolated:    map[string]Measurement{},
		Spoilers:    map[string]float64{},
		Mixes:       map[string][]float64{},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("contender: reading checkpoint %s: %w", path, err)
	}
	var loaded trainCheckpointState
	if err := json.Unmarshal(data, &loaded); err != nil {
		return nil, fmt.Errorf("contender: corrupt checkpoint %s: %w", path, err)
	}
	if loaded.Version != trainCheckpointVersion {
		return nil, fmt.Errorf("contender: checkpoint %s has version %d (want %d)", path, loaded.Version, trainCheckpointVersion)
	}
	if loaded.Fingerprint != fingerprint {
		return nil, fmt.Errorf("contender: checkpoint %s was taken under a different configuration or workload (fingerprint %s, current campaign %s) — delete it or restore the original flags",
			path, loaded.Fingerprint, fingerprint)
	}
	if loaded.Scans == nil {
		loaded.Scans = map[string]float64{}
	}
	if loaded.Isolated == nil {
		loaded.Isolated = map[string]Measurement{}
	}
	if loaded.Spoilers == nil {
		loaded.Spoilers = map[string]float64{}
	}
	if loaded.Mixes == nil {
		loaded.Mixes = map[string][]float64{}
	}
	c.state = loaded
	return c, nil
}

// flush writes the checkpoint atomically.
func (c *trainCheckpoint) flush() error {
	data, err := json.MarshalIndent(&c.state, "", "  ")
	if err != nil {
		return fmt.Errorf("contender: encoding checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("contender: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("contender: committing checkpoint: %w", err)
	}
	return nil
}

// discard removes the checkpoint file after a campaign completes.
func (c *trainCheckpoint) discard() {
	os.Remove(c.path)
}

// trainFingerprint hashes everything that shapes the sampling design —
// config knobs, seed, template IDs, fact tables — into a short hex string.
// Two campaigns share a checkpoint only if their fingerprints match.
func trainFingerprint(cfg TrainConfig, templates []TemplateMeta, tables []string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|mpls=%v|lhs=%d|steady=%d|iso=%d|seed=%d|tables=%q|ids=",
		trainCheckpointVersion, cfg.MPLs, cfg.LHSRuns, cfg.SteadySamples, cfg.IsolatedRuns, cfg.Seed, tables)
	for _, t := range templates {
		fmt.Fprintf(h, "%d,", t.ID)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
