package contender

import (
	"context"
	"strings"
	"testing"
	"time"
)

// quickObsOptions is a small, fast sampling design shared by the
// observability tests.
func quickObsOptions(extra ...Option) []Option {
	base := []Option{WithMPLs(2), WithLHSRuns(1), WithSteadySamples(2), WithSeed(7), WithWorkers(1)}
	return append(base, extra...)
}

// TestGoldenObserverEventStream is the determinism property of the
// observability layer: two same-seed single-worker campaigns emit
// byte-identical canonical event logs (wall-clock durations excluded,
// every deterministic field included).
func TestGoldenObserverEventStream(t *testing.T) {
	run := func() string {
		rec := NewRecordingObserver()
		wb, err := NewWorkbench(quickObsOptions(WithObserver(rec))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wb.Train(); err != nil {
			t.Fatal(err)
		}
		return rec.CanonicalLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same-seed campaigns produced different canonical event logs")
	}
	// The log must actually cover the campaign: campaign begin/end,
	// per-template profiles, scans, mixes, checkpointless run → no points.
	for _, want := range []string{
		"begin " + SpanTrainCampaign,
		"end " + SpanTrainCampaign,
		"end " + SpanTrainProfile,
		"end " + SpanTrainScan,
		"end " + SpanTrainMix,
		"end " + SpanTrainFit,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("canonical log missing %q", want)
		}
	}
}

// TestGoldenObserverEventStreamWithFaults extends the golden property
// under injected transient faults rescued by retries: the retry points
// (including their seed-deterministic backoff delays in Value) are part
// of the reproducible stream.
func TestGoldenObserverEventStreamWithFaults(t *testing.T) {
	run := func() string {
		rec := NewRecordingObserver()
		p := DefaultRetryPolicy()
		p.Sleep = func(time.Duration) {}
		wb, err := NewWorkbench(quickObsOptions(
			WithObserver(rec),
			WithRetry(p),
			WithFaults(FaultConfig{Seed: 3, TransientRate: 0.10, Sleep: func(time.Duration) {}}),
		)...)
		if err != nil {
			t.Fatal(err)
		}
		if wb.Resilience().Retries == 0 {
			t.Fatal("fault injection produced no retries; the test is vacuous")
		}
		return rec.CanonicalLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("faulted same-seed campaigns produced different canonical event logs")
	}
	if !strings.Contains(a, "point "+PointTrainRetry) {
		t.Error("retry points missing from the event stream")
	}
}

// panickingObserver panics on every event — the adversarial observer of
// the isolation guarantee.
type panickingObserver struct{}

func (panickingObserver) Event(Event) { panic("hostile observer") }

// TestPanickingObserverCannotCorruptTraining: an observer that panics on
// every single event must not change what is trained. The resulting
// predictor is byte-identical to one trained without any observer.
func TestPanickingObserverCannotCorruptTraining(t *testing.T) {
	train := func(o Observer) string {
		opts := quickObsOptions()
		if o != nil {
			opts = append(opts, WithObserver(o))
		}
		wb, err := NewWorkbench(opts...)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := wb.Train()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := pred.Save(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	clean := train(nil)
	hostile := train(panickingObserver{})
	if clean != hostile {
		t.Fatal("a panicking observer changed the trained predictor")
	}
}

// TestPanickingObserverOnSystemPath repeats the corruption check on the
// TrainFromSystem path, including serving: predictions still work with
// the hostile observer installed on the predictor.
func TestPanickingObserverOnSystemPath(t *testing.T) {
	clean, err := TrainFromSystem(freshChaosSystem(5), chaosTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosTrainConfig()
	cfg.Observer = panickingObserver{}
	hostile, err := TrainFromSystem(freshChaosSystem(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if predictorBytes(t, clean.Predictor) != predictorBytes(t, hostile.Predictor) {
		t.Fatal("a panicking observer changed the system-trained predictor")
	}
	// The hostile observer is inherited for serving; predictions survive it.
	want, err := clean.Predictor.PredictKnown(2, []int{22})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hostile.Predictor.PredictKnown(2, []int{22})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("prediction under hostile observer %g != %g", got, want)
	}
}

// TestPredictKnownZeroAllocWithoutObserver locks the acceptance
// criterion in as a test (the CI bench guard enforces the same bound
// via BenchmarkPredictKnown): without an observer the serving hot path
// performs zero heap allocations.
func TestPredictKnownZeroAllocWithoutObserver(t *testing.T) {
	_, pred := testWorkbench(t)
	pred.Prime()
	mix := []int{2, 22}
	if _, err := pred.PredictKnown(71, mix); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := pred.PredictKnown(71, mix); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictKnown without observer: %.1f allocs/op, want 0", allocs)
	}
}

// TestServingSpans: an observer installed on a predictor sees one
// serve.* span per call, with the right shape per endpoint.
func TestServingSpans(t *testing.T) {
	_, pred := testWorkbench(t)
	rec := NewRecordingObserver()
	pred.SetObserver(rec)
	defer pred.SetObserver(nil)
	if pred.Observer() != Observer(rec) {
		t.Fatal("Observer() accessor lost the observer")
	}

	if _, err := pred.PredictKnown(71, []int{2}); err != nil {
		t.Fatal(err)
	}
	if n := rec.CountSpan(SpanServePredictKnown); n != 1 {
		t.Errorf("%d predict_known spans, want 1", n)
	}

	var buf PredictBuffer
	mixes := [][]int{{2}, {2, 22}, {22, 62}}
	if _, err := pred.PredictBatch(&buf, 71, mixes); err != nil {
		t.Fatal(err)
	}
	// A batch is ONE span (Value = len(mixes)), not one per mix.
	if n := rec.CountSpan(SpanServePredictBatch); n != 1 {
		t.Errorf("%d predict_batch spans, want 1", n)
	}
	if n := rec.CountSpan(SpanServePredictKnown); n != 1 {
		t.Errorf("batch leaked %d extra predict_known spans", n-1)
	}

	pred.CQI(71, []int{2})
	if n := rec.CountSpan(SpanServeCQI); n != 1 {
		t.Errorf("%d cqi spans, want 1", n)
	}

	stats, _ := pred.Knowledge().Template(71)
	stats.ID = 9999
	if _, err := pred.PredictNew(stats, []int{2}, SpoilerMeasured); err != nil {
		t.Fatal(err)
	}
	if n := rec.CountSpan(SpanServePredictNew); n != 1 {
		t.Errorf("%d predict_new spans, want 1", n)
	}

	// Check the batch span's payload.
	for _, ev := range rec.Events() {
		if ev.Span == SpanServePredictBatch {
			if ev.Value != float64(len(mixes)) || ev.Template != 71 {
				t.Errorf("batch span payload: %+v", ev)
			}
		}
	}
}

// TestSchedulerSpans: ScheduleBatch emits a sched.policy span keyed by
// policy name and a sched.forecast span carrying the makespan.
func TestSchedulerSpans(t *testing.T) {
	_, pred := testWorkbench(t)
	rec := NewRecordingObserver()
	pred.SetObserver(rec)
	defer pred.SetObserver(nil)

	batch := []int{71, 2, 62, 26}
	_, _, makespan, err := pred.ScheduleBatch(batch, 2, PolicyInteractionAware)
	if err != nil {
		t.Fatal(err)
	}
	var policySeen, forecastSeen bool
	for _, ev := range rec.Events() {
		switch ev.Span {
		case SpanSchedPolicy:
			policySeen = true
			if ev.Key != PolicyInteractionAware.Name() || ev.Value != float64(len(batch)) || ev.MPL != 2 {
				t.Errorf("policy span payload: %+v", ev)
			}
		case SpanSchedForecast:
			forecastSeen = true
			if ev.Value != makespan {
				t.Errorf("forecast span value %g, want makespan %g", ev.Value, makespan)
			}
		}
	}
	if !policySeen || !forecastSeen {
		t.Fatalf("policy span seen=%v, forecast span seen=%v", policySeen, forecastSeen)
	}
}

// TestSystemPathObserverAndOptions exercises satellite concerns
// together: Workbench-style options (WithRetry, WithFaults,
// WithObserver) apply uniformly on the System path, retries surface as
// train.retry points, and the metrics observer aggregates them into the
// dedicated counters.
func TestSystemPathObserverAndOptions(t *testing.T) {
	rec := NewRecordingObserver()
	m := NewMetrics()
	p := *noSleepRetry()
	res, err := TrainFromSystem(freshChaosSystem(5), chaosTrainConfig(),
		WithRetry(p),
		WithFaults(FaultConfig{Seed: 11, TransientRate: 0.10, Sleep: func(time.Duration) {}}),
		WithObserver(MultiObserver(rec, m)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Retries == 0 {
		t.Fatal("options did not reach the trainer: no retries under 10% transient faults")
	}
	if res.Report.FaultStats == nil || res.Report.FaultStats.Injected() == 0 {
		t.Fatal("WithFaults not applied on the System path")
	}
	if rec.CountSpan(PointTrainRetry) != res.Report.Retries {
		t.Errorf("%d retry points, report says %d retries", rec.CountSpan(PointTrainRetry), res.Report.Retries)
	}
	if n := rec.CountSpan(SpanTrainCampaign); n != 2 {
		t.Errorf("%d campaign events, want begin+end", n)
	}
	snap := m.Snapshot()
	if snap.Counter("contender_retries_total") != int64(res.Report.Retries) {
		t.Errorf("metrics retries %d != report %d", snap.Counter("contender_retries_total"), res.Report.Retries)
	}
	if snap.Counter(`contender_spans_total{span="train.profile"}`) == 0 {
		t.Error("profile spans missing from metrics")
	}
	// The predictor inherits the observer.
	if res.Predictor.Observer() == nil {
		t.Error("system-trained predictor did not inherit the observer")
	}
}

// TestSystemPathCheckpointEvents: checkpoint writes and resumed
// measurements surface as points on the System path.
func TestSystemPathCheckpointEvents(t *testing.T) {
	path := t.TempDir() + "/train.ckpt"
	inner := freshChaosSystem(5)
	rec := NewRecordingObserver()
	cfg := chaosTrainConfig()
	cfg.CheckpointPath = path
	cfg.Observer = rec

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := TrainFromSystemContext(ctx, &cancelAfterSystem{System: inner, after: 7, cancel: cancel}, cfg)
	if err == nil {
		t.Fatal("interrupted campaign must fail")
	}
	if rec.CountSpan(PointTrainCheckpoint) == 0 {
		t.Fatal("no checkpoint-write points before the interrupt")
	}

	rec2 := NewRecordingObserver()
	cfg.Observer = rec2
	res, err := TrainFromSystemContext(context.Background(), inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Resumed == 0 {
		t.Fatal("resume did not replay")
	}
	if rec2.CountSpan(PointTrainResume) != res.Report.Resumed {
		t.Errorf("%d resume points, report says %d", rec2.CountSpan(PointTrainResume), res.Report.Resumed)
	}
}

// TestWorkbenchMetricsAccessors covers Observer()/MetricsSnapshot() on
// the facade.
func TestWorkbenchMetricsAccessors(t *testing.T) {
	m := NewMetrics()
	wb, err := NewWorkbench(quickObsOptions(WithObserver(m))...)
	if err != nil {
		t.Fatal(err)
	}
	if wb.Observer() == nil {
		t.Fatal("Observer() lost the installed observer")
	}
	snap, ok := wb.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot must find the Metrics observer")
	}
	if snap.Counter(`contender_spans_total{span="train.campaign"}`) != 1 {
		t.Errorf("campaign counter: %+v", snap.Counters)
	}
	if snap.Histogram(`contender_span_duration_seconds{span="train.mix"}`).Count == 0 {
		t.Error("mix duration histogram empty")
	}

	// No observer → no snapshot.
	plain, err := NewWorkbench(quickObsOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.MetricsSnapshot(); ok {
		t.Error("MetricsSnapshot must report absence without a Metrics observer")
	}
}

// TestObserveSimulation bridges the simulator tracer into an observer.
func TestObserveSimulation(t *testing.T) {
	wb, _ := testWorkbench(t)
	rec := NewRecordingObserver()
	wb.ObserveSimulation(rec)
	defer wb.ObserveSimulation(nil)
	if _, err := wb.SimulateIsolated(71); err != nil {
		t.Fatal(err)
	}
	if rec.CountSpan(SpanSimQuery) < 2 {
		t.Fatalf("%d sim.query events, want begin+end", rec.CountSpan(SpanSimQuery))
	}
	if rec.CountSpan(PointSimStage) == 0 {
		t.Error("no sim.stage points")
	}
	// Virtual durations: the end span's Dur must be positive and derived
	// from simulated time, not wall clock (an isolated query simulates
	// seconds of work in microseconds of wall time).
	for _, ev := range rec.Events() {
		if ev.Span == SpanSimQuery && ev.Kind == EventSpanEnd && ev.Dur < time.Millisecond {
			t.Errorf("virtual duration implausibly small: %v", ev.Dur)
		}
	}
}

// TestSlowLogOnCampaign: a zero-threshold slow log sees every span end.
func TestSlowLogOnCampaign(t *testing.T) {
	var b strings.Builder
	wb, err := NewWorkbench(quickObsOptions(WithObserver(NewSlowLog(&b, 0)))...)
	if err != nil {
		t.Fatal(err)
	}
	_ = wb
	if !strings.Contains(b.String(), "SLOW "+SpanTrainProfile) {
		t.Error("zero-threshold slow log missed profile spans")
	}
}

// TestDeprecatedShimEquivalence: TrainPredictorFromSystem (the
// pre-observability signature) must produce a predictor byte-identical
// to TrainFromSystem's.
func TestDeprecatedShimEquivalence(t *testing.T) {
	viaShim, err := TrainPredictorFromSystem(freshChaosSystem(5), chaosTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaNew, err := TrainFromSystem(freshChaosSystem(5), chaosTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if predictorBytes(t, viaShim) != predictorBytes(t, viaNew.Predictor) {
		t.Fatal("deprecated shim diverged from TrainFromSystem")
	}
}

// TestObserverIsNotInCheckpointFingerprint: a campaign checkpointed
// WITHOUT an observer must resume cleanly WITH one — observation is
// outside the configuration identity.
func TestObserverIsNotInCheckpointFingerprint(t *testing.T) {
	path := t.TempDir() + "/train.ckpt"
	inner := freshChaosSystem(5)
	cfg := chaosTrainConfig()
	cfg.CheckpointPath = path

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := TrainFromSystemContext(ctx, &cancelAfterSystem{System: inner, after: 7, cancel: cancel}, cfg); err == nil {
		t.Fatal("interrupted campaign must fail")
	}

	cfg.Observer = NewRecordingObserver()
	if _, err := TrainFromSystemContext(context.Background(), inner, cfg); err != nil {
		t.Fatalf("adding an observer must not invalidate the checkpoint: %v", err)
	}
}
