package contender

import (
	"io"

	"contender/internal/core"
	"contender/internal/obs"
)

// Prediction-quality facade: install a Quality aggregator with
// WithQuality (Workbench path) or TrainConfig.Quality (System path) —
// or directly with Predictor.SetQuality — then stream observed
// latencies through Predictor.Feedback. The aggregator keeps
// per-template relative-error statistics and a deterministic drift
// detector; read it with Predictor.QualityReport or
// Workbench.QualitySnapshot, scrape it from the CLIs' /quality
// endpoint, or watch the quality.* metric families on /metrics.

// Quality aggregates prediction-accuracy feedback per template:
// counts, rolling mean relative error, error histograms with
// quantiles, and a drift state machine (healthy → degraded → stale
// with hysteresis). It implements http.Handler, serving its report as
// JSON. Safe for concurrent use.
type Quality = obs.Quality

// QualityReport is a point-in-time summary of prediction quality
// across all templates that received feedback.
type QualityReport = obs.QualityReport

// TemplateQuality is one template's accuracy summary in a
// QualityReport.
type TemplateQuality = obs.TemplateQuality

// DriftState is a template's prediction-quality state.
type DriftState = obs.DriftState

// Drift states, in order of degradation.
const (
	// DriftHealthy: no drift detected; predictions are trustworthy.
	DriftHealthy = obs.DriftHealthy
	// DriftDegraded: the error distribution has shifted since training.
	DriftDegraded = obs.DriftDegraded
	// DriftStale: the error level stayed high — retrain the template.
	DriftStale = obs.DriftStale
)

// DriftConfig tunes the drift detector (Page-Hinkley threshold,
// stale/recovery error levels, window and dwell lengths). The zero
// value selects the documented defaults.
type DriftConfig = obs.DriftConfig

// FeedbackResult reports one Predictor.Feedback observation.
type FeedbackResult = core.FeedbackResult

// ErrBadObservation: Feedback was handed a non-positive or non-finite
// observed latency. Test with errors.Is.
var ErrBadObservation = core.ErrBadObservation

// NewQuality returns a quality aggregator with the given detector
// configuration (zero value: defaults).
func NewQuality(cfg DriftConfig) *Quality { return obs.NewQuality(cfg) }

// WithQuality installs a prediction-quality aggregator on the
// workbench: predictors returned by Train inherit it (like WithObserver
// and serve.* spans), so their Feedback calls stream into q. Quality
// aggregation is entirely off the uninstrumented serving path —
// PredictKnown/PredictBatch never consult it.
func WithQuality(q *Quality) Option {
	return func(c *config) { c.quality = q }
}

// QualitySnapshot reports the prediction quality accumulated by the
// workbench's aggregator. The second return is false when the
// workbench was built without WithQuality.
func (w *Workbench) QualitySnapshot() (QualityReport, bool) {
	if w.quality == nil {
		return QualityReport{Templates: []TemplateQuality{}}, false
	}
	return w.quality.Report(), true
}

// WriteTraceJSON renders a recorded event stream (e.g.
// RecordingObserver.Events()) as Chrome trace-event JSON, openable in
// chrome://tracing, Perfetto, or speedscope. The CLIs expose it behind
// -trace-out. Output is deterministic for a deterministic event
// stream: timestamps derive from event order, durations, and simulator
// virtual times, never the wall clock.
func WriteTraceJSON(w io.Writer, events []Event) error {
	return obs.WriteTraceJSON(w, events)
}
