package contender

import (
	"errors"
	"fmt"
	"testing"
)

func TestTrainFromSimSystem(t *testing.T) {
	wb, _ := testWorkbench(t)
	sys := wb.System()

	// The interface exposes the full workload.
	metas := sys.Templates()
	if len(metas) != 25 {
		t.Fatalf("%d templates via System", len(metas))
	}
	if len(sys.FactTables()) != 7 {
		t.Fatal("fact tables missing")
	}

	pred, err := TrainFromSystem(sys, TrainConfig{MPLs: []int{2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The system-trained predictor predicts a mix close to the simulated
	// ground truth.
	mix := []int{26, 62}
	estimate, err := pred.PredictKnown(mix[0], mix[1:])
	if err != nil {
		t.Fatal(err)
	}
	truth, err := wb.Simulate(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(truth[0]-estimate) / truth[0]; rel > 0.5 {
		t.Fatalf("prediction %g vs truth %g (%.0f%% off)", estimate, truth[0], 100*rel)
	}
	// And supports persistence like any other predictor.
	path := t.TempDir() + "/sys.json"
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestSimSystemErrors(t *testing.T) {
	wb, _ := testWorkbench(t)
	sys := wb.System()
	if _, err := sys.RunIsolated(12345); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.RunSpoiler(12345, 2); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.RunMix([]int{12345}, 2); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.ScanSeconds("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
}

// faultySystem wraps the sim system and fails a chosen operation, to check
// error propagation through the trainer.
type faultySystem struct {
	System
	failIsolated bool
	failMix      bool
	shortMix     bool
}

func (f *faultySystem) RunIsolated(id int) (Measurement, error) {
	if f.failIsolated {
		return Measurement{}, errors.New("injected isolated failure")
	}
	return f.System.RunIsolated(id)
}

func (f *faultySystem) RunMix(mix []int, samples int) ([]float64, error) {
	if f.failMix {
		return nil, errors.New("injected mix failure")
	}
	if f.shortMix {
		return []float64{1}, nil // wrong length
	}
	return f.System.RunMix(mix, samples)
}

func TestTrainFromSystemFailureInjection(t *testing.T) {
	wb, _ := testWorkbench(t)
	base := wb.System()
	cfg := TrainConfig{MPLs: []int{2}, Seed: 4}

	for name, sys := range map[string]System{
		"isolated failure": &faultySystem{System: base, failIsolated: true},
		"mix failure":      &faultySystem{System: base, failMix: true},
		"short mix result": &faultySystem{System: base, shortMix: true},
	} {
		if _, err := TrainFromSystem(sys, cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// tinySystem has too few templates.
type tinySystem struct{ System }

func (tinySystem) Templates() []TemplateMeta { return []TemplateMeta{{ID: 1}} }

func TestTrainFromSystemTooSmall(t *testing.T) {
	wb, _ := testWorkbench(t)
	if _, err := TrainFromSystem(tinySystem{wb.System()}, TrainConfig{}); err == nil {
		t.Fatal("expected error for tiny workload")
	}
}

// Ensure the System interface stays implementable by external code: a
// compile-time check with a standalone implementation.
type externalSystem struct{}

func (externalSystem) Templates() []TemplateMeta           { return nil }
func (externalSystem) FactTables() []string                { return nil }
func (externalSystem) ScanSeconds(string) (float64, error) { return 0, fmt.Errorf("x") }
func (externalSystem) RunIsolated(int) (Measurement, error) {
	return Measurement{}, fmt.Errorf("x")
}
func (externalSystem) RunSpoiler(int, int) (Measurement, error) {
	return Measurement{}, fmt.Errorf("x")
}
func (externalSystem) RunMix([]int, int) ([]float64, error) { return nil, fmt.Errorf("x") }

var _ System = externalSystem{}
