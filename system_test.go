package contender

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"contender/internal/sim"
	"contender/internal/tpcds"
)

func TestTrainFromSimSystem(t *testing.T) {
	wb, _ := testWorkbench(t)
	sys := wb.System()

	// The interface exposes the full workload.
	metas := sys.Templates()
	if len(metas) != 25 {
		t.Fatalf("%d templates via System", len(metas))
	}
	if len(sys.FactTables()) != 7 {
		t.Fatal("fact tables missing")
	}

	// Train through the deprecated shim: it must keep returning a bare,
	// fully functional *Predictor.
	pred, err := TrainPredictorFromSystem(sys, TrainConfig{MPLs: []int{2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The system-trained predictor predicts a mix close to the simulated
	// ground truth.
	mix := []int{26, 62}
	estimate, err := pred.PredictKnown(mix[0], mix[1:])
	if err != nil {
		t.Fatal(err)
	}
	truth, err := wb.Simulate(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(truth[0]-estimate) / truth[0]; rel > 0.5 {
		t.Fatalf("prediction %g vs truth %g (%.0f%% off)", estimate, truth[0], 100*rel)
	}
	// And supports persistence like any other predictor.
	path := t.TempDir() + "/sys.json"
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestSimSystemErrors(t *testing.T) {
	wb, _ := testWorkbench(t)
	sys := wb.System()
	if _, err := sys.RunIsolated(12345); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.RunSpoiler(12345, 2); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.RunMix([]int{12345}, 2); err == nil {
		t.Fatal("unknown template must error")
	}
	if _, err := sys.ScanSeconds("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
}

// ---------------------------------------------------------------------------
// Resilience matrix: the trainer against FaultSystem's deterministic chaos.
// ---------------------------------------------------------------------------

// freshChaosSystem builds an independent simulator-backed System on a small
// workload. Each training run gets its own engine so runs are comparable:
// the substrate shares one RNG stream across measurements, and byte-identity
// claims rest on every run issuing the same substrate call sequence.
func freshChaosSystem(seed int64) System {
	w := tpcds.NewWorkload().Subset([]int{2, 22, 25, 26, 61, 71})
	return &simSystem{workload: w, engine: sim.NewEngine(sim.DefaultConfig().WithSeed(seed))}
}

func chaosTrainConfig() TrainConfig {
	return TrainConfig{MPLs: []int{2, 3}, LHSRuns: 2, SteadySamples: 3, IsolatedRuns: 2, Seed: 9}
}

func noSleepRetry() *RetryPolicy {
	p := DefaultRetryPolicy()
	p.Sleep = func(time.Duration) {}
	return &p
}

func predictorBytes(t *testing.T, p *Predictor) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTrainFromSystemChaosByteIdentical is the acceptance property at the
// System boundary: transient and corrupt faults, rescued by retries, leave
// the trained predictor byte-identical to a fault-free run — faulted calls
// never reach the substrate, so its RNG stream is unperturbed.
func TestTrainFromSystemChaosByteIdentical(t *testing.T) {
	cleanRes, err := TrainFromSystem(freshChaosSystem(5), chaosTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := predictorBytes(t, cleanRes.Predictor)

	for name, fc := range map[string]FaultConfig{
		"10% transient": {Seed: 11, TransientRate: 0.10, Sleep: func(time.Duration) {}},
		"8% corrupt":    {Seed: 3, CorruptRate: 0.08, Sleep: func(time.Duration) {}},
	} {
		fs := NewFaultSystem(freshChaosSystem(5), fc)
		cfg := chaosTrainConfig()
		cfg.Retry = noSleepRetry()
		res, err := TrainFromSystemContext(context.Background(), fs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fs.Stats().Injected() == 0 {
			t.Fatalf("%s: injector never fired", name)
		}
		if res.Report.Retries == 0 {
			t.Errorf("%s: retries must have rescued the injected faults", name)
		}
		if res.Report.Degraded() {
			t.Errorf("%s: coverage must not degrade: %+v", name, res.Report)
		}
		if predictorBytes(t, res.Predictor) != clean {
			t.Errorf("%s: predictor differs from the fault-free run", name)
		}
	}
}

// TestTrainFromSystemPermanentQuarantines: a template whose isolated run
// fails on every attempt is quarantined; training completes on the rest and
// the report carries the degradation.
func TestTrainFromSystemPermanentQuarantines(t *testing.T) {
	fs := NewFaultSystem(freshChaosSystem(5), FaultConfig{
		Seed:           1,
		PermanentSites: []string{"isolated/26"},
		Sleep:          func(time.Duration) {},
	})
	cfg := chaosTrainConfig()
	cfg.Retry = noSleepRetry()
	res, err := TrainFromSystemContext(context.Background(), fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if !r.Degraded() {
		t.Fatalf("report must be degraded: %+v", r)
	}
	if r.TrainedTemplates != 5 || r.TotalTemplates != 6 {
		t.Fatalf("coverage %d/%d, want 5/6", r.TrainedTemplates, r.TotalTemplates)
	}
	if len(r.QuarantinedTemplates) != 1 || r.QuarantinedTemplates[0].Template != 26 {
		t.Fatalf("quarantine records: %+v", r.QuarantinedTemplates)
	}
	if !strings.Contains(r.QuarantinedTemplates[0].Reason, "permanent") {
		t.Errorf("quarantine reason %q does not mention the permanent failure", r.QuarantinedTemplates[0].Reason)
	}
	if r.DroppedMixes == 0 {
		t.Fatal("mixes containing the quarantined template must be dropped")
	}
	// The quarantined template is absent; the survivors still predict.
	if _, err := res.Predictor.PredictKnown(26, []int{2}); !errors.Is(err, ErrUnknownTemplate) {
		t.Errorf("PredictKnown on quarantined template: %v, want ErrUnknownTemplate", err)
	}
	if _, err := res.Predictor.PredictKnown(2, []int{22}); err != nil {
		t.Errorf("surviving template must predict: %v", err)
	}
}

// TestTrainFromSystemNoRetryFailsFast preserves the legacy contract: with
// no retry policy, the first failure aborts training.
func TestTrainFromSystemNoRetryFailsFast(t *testing.T) {
	fs := NewFaultSystem(freshChaosSystem(5), FaultConfig{
		Seed:          2,
		TransientRate: 1,
		Sleep:         func(time.Duration) {},
	})
	_, err := TrainFromSystem(fs, chaosTrainConfig())
	if err == nil {
		t.Fatal("fail-fast mode must surface the first fault")
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("err = %v, want the transient sentinel preserved", err)
	}
}

// cancelAfterSystem cancels a context after n successful measurement calls,
// simulating an operator hitting Ctrl-C mid-campaign.
type cancelAfterSystem struct {
	System
	calls  int
	after  int
	cancel context.CancelFunc
}

func (c *cancelAfterSystem) tick() {
	if c.calls++; c.calls == c.after {
		c.cancel()
	}
}

func (c *cancelAfterSystem) ScanSeconds(table string) (float64, error) {
	c.tick()
	return c.System.ScanSeconds(table)
}

func (c *cancelAfterSystem) RunIsolated(id int) (Measurement, error) {
	c.tick()
	return c.System.RunIsolated(id)
}

func (c *cancelAfterSystem) RunSpoiler(id, mpl int) (Measurement, error) {
	c.tick()
	return c.System.RunSpoiler(id, mpl)
}

func (c *cancelAfterSystem) RunMix(mix []int, samples int) ([]float64, error) {
	c.tick()
	return c.System.RunMix(mix, samples)
}

// TestTrainFromSystemCheckpointResume interrupts a checkpointed campaign
// mid-flight, refuses a resume under different flags, then resumes properly
// and requires a predictor byte-identical to an uninterrupted run. The
// resumed run reuses the same System instance — a real backend keeps its
// state across the operator's retry, and the simulator models that with its
// persistent RNG stream.
func TestTrainFromSystemCheckpointResume(t *testing.T) {
	cleanRes, err := TrainFromSystem(freshChaosSystem(5), chaosTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := predictorBytes(t, cleanRes.Predictor)

	path := t.TempDir() + "/train.ckpt"
	inner := freshChaosSystem(5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := chaosTrainConfig()
	cfg.CheckpointPath = path
	_, err = TrainFromSystemContext(ctx, &cancelAfterSystem{System: inner, after: 7, cancel: cancel}, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("checkpoint missing after interrupt: %v", serr)
	}

	// Different flags must be refused, not silently mixed in.
	other := cfg
	other.Seed = 10
	if _, err := TrainFromSystemContext(context.Background(), inner, other); err == nil ||
		!strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}

	res, err := TrainFromSystemContext(context.Background(), inner, cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if res.Report.Resumed == 0 {
		t.Error("resumed run replayed no measurements")
	}
	if predictorBytes(t, res.Predictor) != clean {
		t.Error("resumed predictor differs from an uninterrupted run")
	}
	if _, serr := os.Stat(path); serr == nil {
		t.Error("checkpoint must be removed after a completed campaign")
	}
}

// tinySystem has too few templates.
type tinySystem struct{ System }

func (tinySystem) Templates() []TemplateMeta { return []TemplateMeta{{ID: 1}} }

func TestTrainFromSystemTooSmall(t *testing.T) {
	wb, _ := testWorkbench(t)
	if _, err := TrainFromSystem(tinySystem{wb.System()}, TrainConfig{}); err == nil {
		t.Fatal("expected error for tiny workload")
	}
}

// Ensure the System interface stays implementable by external code: a
// compile-time check with a standalone implementation.
type externalSystem struct{}

func (externalSystem) Templates() []TemplateMeta           { return nil }
func (externalSystem) FactTables() []string                { return nil }
func (externalSystem) ScanSeconds(string) (float64, error) { return 0, fmt.Errorf("x") }
func (externalSystem) RunIsolated(int) (Measurement, error) {
	return Measurement{}, fmt.Errorf("x")
}
func (externalSystem) RunSpoiler(int, int) (Measurement, error) {
	return Measurement{}, fmt.Errorf("x")
}
func (externalSystem) RunMix([]int, int) ([]float64, error) { return nil, fmt.Errorf("x") }

var _ System = externalSystem{}
