package contender

import (
	"io"
	"time"

	"contender/internal/obs"
	"contender/internal/sim"
)

// Observability facade: every layer of the framework — training-data
// collection, the System trainer, serving, scheduling, the simulator —
// emits structured events to a single Observer interface. Install one
// with WithObserver (Workbench path) or TrainConfig.Observer (System
// path); the trained Predictor inherits it for serving spans.
//
// Three observers ship in the box:
//
//   - NewMetrics: an allocation-conscious registry of counters, gauges,
//     and latency histograms with Prometheus-text and expvar exposition
//     (serve it over HTTP via the -metrics-addr flag of the CLIs, or
//     http.Handle("/metrics", m)).
//   - NewRecordingObserver: an in-memory event log with a byte-stable
//     canonical rendering — the backbone of the golden determinism
//     tests.
//   - NewSlowLog: a threshold filter that prints operations slower than
//     a cutoff.
//
// Compose several with MultiObserver. A nil Observer is always legal
// and is checked before any clock read, so uninstrumented hot paths
// (notably Predictor.PredictKnown) stay at 0 allocs/op.

// Observer receives instrumentation events. Implementations must be
// safe for concurrent use and should be fast; see the obs package for
// the event model. A panicking Observer cannot corrupt training or
// serving: panics are swallowed at the emit site.
type Observer = obs.Observer

// Event is the single record type delivered to an Observer.
type Event = obs.Event

// EventKind distinguishes span begins, span ends, and point events.
type EventKind = obs.Kind

// Event kinds.
const (
	EventSpanBegin = obs.SpanBegin
	EventSpanEnd   = obs.SpanEnd
	EventPoint     = obs.Point
)

// Span taxonomy, re-exported for filtering events and reading metric
// labels. See the obs package for the full catalogue.
const (
	SpanTrainCampaign = obs.SpanTrainCampaign
	SpanTrainScan     = obs.SpanTrainScan
	SpanTrainProfile  = obs.SpanTrainProfile
	SpanTrainIsolated = obs.SpanTrainIsolated
	SpanTrainSpoiler  = obs.SpanTrainSpoiler
	SpanTrainMix      = obs.SpanTrainMix
	SpanTrainFit      = obs.SpanTrainFit

	PointTrainRetry      = obs.PointTrainRetry
	PointTrainQuarantine = obs.PointTrainQuarantine
	PointTrainCheckpoint = obs.PointTrainCheckpoint
	PointTrainResume     = obs.PointTrainResume

	SpanServePredictKnown = obs.SpanServePredictKnown
	SpanServePredictBatch = obs.SpanServePredictBatch
	SpanServePredictNew   = obs.SpanServePredictNew
	SpanServeCQI          = obs.SpanServeCQI

	SpanSchedPolicy   = obs.SpanSchedPolicy
	SpanSchedForecast = obs.SpanSchedForecast

	SpanSimQuery  = obs.SpanSimQuery
	PointSimStage = obs.PointSimStage

	PointQualityFeedback = obs.PointQualityFeedback
	PointQualityDrift    = obs.PointQualityDrift
)

// Metrics is an Observer that folds the event stream into counters,
// gauges, and latency histograms. It implements http.Handler (serving
// the Prometheus text format) and exposes snapshots for in-process
// consumption.
type Metrics = obs.Metrics

// MetricsSnapshot is a point-in-time copy of every metric family.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram's frozen buckets, with quantile
// estimation.
type HistogramSnapshot = obs.HistogramSnapshot

// NewMetrics returns a metrics-collecting Observer with the standard
// Contender metric families registered (contender_spans_total,
// contender_span_duration_seconds, contender_retries_total, …).
func NewMetrics() *Metrics { return obs.NewMetrics() }

// RecordingObserver is an Observer that appends every event to an
// in-memory log, safe for concurrent use. Its CanonicalLog method
// renders the deterministic fields byte-stably: two same-seed
// single-worker campaigns produce identical logs.
type RecordingObserver = obs.Recording

// NewRecordingObserver returns an empty recording Observer.
func NewRecordingObserver() *RecordingObserver { return obs.NewRecording() }

// NewSlowLog returns an Observer that writes one line to w for every
// completed span whose duration is at least threshold — a cheap way to
// surface outlier measurements or slow serving calls without storing
// the full event stream.
func NewSlowLog(w io.Writer, threshold time.Duration) Observer {
	return obs.NewSlowLog(w, threshold)
}

// MultiObserver fans events out to several observers, isolating each
// from the others' panics. Nil entries are dropped; the result is nil
// when nothing remains, so MultiObserver(nil, nil) keeps the
// fast path.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// EmitEvent delivers ev to o, tolerating a nil or panicking observer —
// for user code that wants to inject its own events into an observer
// pipeline alongside Contender's.
func EmitEvent(o Observer, ev Event) { obs.Emit(o, ev) }

// WithObserver installs an Observer on the sampling campaign (and, via
// Workbench.Train, on the resulting Predictor). Observation never
// changes what is measured: events are emitted outside the determinism
// boundary, the observer is not part of the checkpoint fingerprint, and
// a panicking observer is isolated at the emit site. With
// WithWorkers(1) the event order is fully deterministic; with more
// workers the event SET is deterministic but arrival order is not.
func WithObserver(o Observer) Option {
	return func(c *config) { c.opts.Observer = o }
}

// Observer returns the observer the workbench was built with (nil when
// none was installed).
func (w *Workbench) Observer() Observer { return w.env.Opts.Observer }

// MetricsSnapshot returns a point-in-time copy of the metrics collected
// so far, when the workbench was built with a Metrics observer (alone
// or inside a MultiObserver). The second return is false when no
// Metrics observer is installed.
func (w *Workbench) MetricsSnapshot() (MetricsSnapshot, bool) {
	m := obs.FindMetrics(w.env.Opts.Observer)
	if m == nil {
		return MetricsSnapshot{}, false
	}
	return m.Snapshot(), true
}

// ObserveSimulation bridges the workbench's simulator trace stream into
// the observer: every simulated query becomes a sim.query span (with
// virtual-time durations) and every stage transition a sim.stage point.
// Pass nil to detach. Simulator tracing is verbose — one event per
// query stage — so it is off by default even when an observer is
// installed.
func (w *Workbench) ObserveSimulation(o Observer) {
	if o == nil {
		w.env.Engine.SetTracer(nil)
		return
	}
	w.env.Engine.SetTracer(obs.NewSimTracer(o))
}

// observedRetryPolicy chains a train.retry point emission onto the
// policy's OnRetry hook, copying the policy so the caller's value is
// never mutated. The retry schedule itself (delays, deterministic
// jitter, attempt budget) is unchanged. Nil policy or observer passes
// through.
func observedRetryPolicy(p *RetryPolicy, o Observer) *RetryPolicy {
	if p == nil || o == nil {
		return p
	}
	rp := *p
	prev := rp.OnRetry
	rp.OnRetry = func(site string, retry int, delay time.Duration, err error) {
		if prev != nil {
			prev(site, retry, delay, err)
		}
		obs.Emit(o, Event{
			Kind:    obs.Point,
			Span:    obs.PointTrainRetry,
			Key:     site,
			Attempt: retry,
			Value:   delay.Seconds(),
			Err:     obs.ErrLabel(err),
		})
	}
	return &rp
}

// Compile-time interface checks for the shipped observers.
var (
	_ Observer   = (*Metrics)(nil)
	_ Observer   = (*RecordingObserver)(nil)
	_ Observer   = (*obs.SlowLog)(nil)
	_ sim.Tracer = (*obs.SimTracer)(nil)
)
