package contender

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBlameServeLoop closes the loop on the workbench path: WithBlame
// installs the aggregator, Workbench.Serve threads it into the server,
// an explain-flagged prediction feeds the matrix, and both the wire
// breakdown and BlameSnapshot agree with Predictor.Explain.
func TestBlameServeLoop(t *testing.T) {
	b := NewBlame(BlameConfig{TopK: 3})
	wb, err := NewWorkbench(quickObsOptions(WithBlame(b))...)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := wb.Serve(ctx, pred, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	mix := []int{62}
	body, err := json.Marshal(map[string]any{"primary": 26, "concurrent": mix, "explain": true})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("explain predict status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Prediction float64 `json:"prediction"`
		Explain    *struct {
			Baseline  float64   `json:"baseline"`
			CQI       float64   `json:"cqi"`
			Neighbors []int     `json:"neighbors"`
			Seconds   []float64 `json:"seconds"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Explain == nil {
		t.Fatalf("no breakdown in explain response: %s", w.Body.String())
	}

	var buf ExplainBuffer
	want, err := pred.Explain(&buf, 26, mix)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prediction != want {
		t.Errorf("served prediction %g, want %g", resp.Prediction, want)
	}
	if resp.Explain.Baseline != buf.Baseline || resp.Explain.CQI != buf.CQI {
		t.Errorf("breakdown baseline/cqi = %g/%g, want %g/%g",
			resp.Explain.Baseline, resp.Explain.CQI, buf.Baseline, buf.CQI)
	}

	// The workbench aggregator saw exactly the served decomposition.
	rep, ok := wb.BlameSnapshot()
	if !ok {
		t.Fatal("BlameSnapshot reported no aggregator despite WithBlame")
	}
	if rep.Samples != 1 || len(rep.Pairs) != 1 {
		t.Fatalf("snapshot: %+v", rep)
	}
	pair := rep.Pairs[0]
	if pair.Primary != 26 || pair.Neighbor != 62 || pair.Seconds != buf.Seconds[0] {
		t.Fatalf("blame pair = %+v, want primary 26 neighbor 62 seconds %g", pair, buf.Seconds[0])
	}
	if len(rep.Aggressors) != 1 || rep.Aggressors[0].Template != 62 {
		t.Fatalf("aggressors: %+v, want T62", rep.Aggressors)
	}
	if len(rep.Victims) != 1 || rep.Victims[0].Template != 26 {
		t.Fatalf("victims: %+v, want T26", rep.Victims)
	}
}

// TestBlameSnapshotWithoutAggregator: a workbench built without
// WithBlame reports ok=false and an empty (non-nil) report.
func TestBlameSnapshotWithoutAggregator(t *testing.T) {
	wb, _ := testWorkbench(t)
	rep, ok := wb.BlameSnapshot()
	if ok {
		t.Fatal("BlameSnapshot ok=true without WithBlame")
	}
	if rep.Pairs == nil || len(rep.Pairs) != 0 {
		t.Fatalf("empty snapshot: %+v", rep)
	}
}
