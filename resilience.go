package contender

import (
	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/resilience"
)

// Resilience facade: the error taxonomy and retry policy the training
// pipeline speaks, re-exported so integrators never import the internal
// packages. A System implementation classifies its failures by wrapping
// them with TransientError/PermanentError/CorruptError (or by %w-ing the
// sentinels directly); the trainer then retries, quarantines, or resamples
// accordingly. Unclassified errors are treated as retryable.

// RetryPolicy is the exponential-backoff schedule applied around every
// measurement when set on TrainConfig.Retry (or via WithRetry). Jitter is
// derived deterministically from the seed and the call site, so reruns of
// a campaign wait the same schedule.
type RetryPolicy = resilience.RetryPolicy

// DefaultRetryPolicy returns the default schedule: 4 attempts, 50ms base
// delay doubling to a 2s cap, ±25% deterministic jitter.
func DefaultRetryPolicy() RetryPolicy { return resilience.Default() }

// Training-path sentinels. Test with errors.Is.
var (
	// ErrTransient marks a measurement failure worth retrying.
	ErrTransient = resilience.ErrTransient
	// ErrPermanent marks a failure retries cannot fix; the trainer fails
	// fast and quarantines the affected template, table, or mix.
	ErrPermanent = resilience.ErrPermanent
	// ErrCorruptMeasurement marks a call that returned values no real
	// measurement can produce (NaN, negative, wrong-length); the trainer
	// discards the sample and resamples under the retry budget.
	ErrCorruptMeasurement = resilience.ErrCorruptMeasurement
)

// Serving-path sentinels returned by PredictKnown/PredictBatch/PredictNew.
// Test with errors.Is.
var (
	// ErrUnknownTemplate: the primary template is not in the knowledge base.
	ErrUnknownTemplate = core.ErrUnknownTemplate
	// ErrEmptyMix: the concurrent mix is empty; prediction at MPL 1 is the
	// isolated latency, not a concurrency prediction.
	ErrEmptyMix = core.ErrEmptyMix
	// ErrUntrainedMPL: the mix's multiprogramming level (or the template at
	// that MPL) has no trained reference models.
	ErrUntrainedMPL = core.ErrUntrainedMPL
)

// CollectionReport summarizes a workbench sampling campaign's resilience
// outcome; see Workbench.Resilience.
type CollectionReport = experiments.CollectionReport

// TaskFailure records one quarantined sampling task.
type TaskFailure = experiments.TaskFailure

// TransientError wraps err as a retryable measurement failure.
func TransientError(err error) error { return resilience.Transient(err) }

// PermanentError wraps err as a non-retryable measurement failure.
func PermanentError(err error) error { return resilience.Permanent(err) }

// CorruptError wraps err as a corrupt-measurement failure.
func CorruptError(err error) error { return resilience.Corrupt(err) }
