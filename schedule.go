package contender

import (
	"fmt"
	"sort"

	"contender/internal/sched"
	"contender/internal/sim"
)

// Scheduling: the batch-scheduling application of the paper's
// introduction, exposed on the public API. A Predictor orders a query
// batch with a concurrency-aware policy and forecasts its completion
// timeline; a Workbench executes the schedule on the simulated host to
// validate it.

// SchedulePolicy orders a batch for admission.
type SchedulePolicy = sched.Policy

// Available policies.
var (
	// PolicyFIFO admits jobs in submission order.
	PolicyFIFO SchedulePolicy = sched.FIFO{}
	// PolicySJF admits shortest (isolated) jobs first.
	PolicySJF SchedulePolicy = sched.SJF{}
	// PolicyInteractionAware orders by predicted makespan using
	// Contender's concurrent-latency predictions.
	PolicyInteractionAware SchedulePolicy = sched.InteractionAware{}
)

// JobForecast is one job's predicted execution window in a schedule.
type JobForecast = sched.JobForecast

// batchLatency adapts the predictor to the scheduler: isolation uses the
// isolated latency; trained MPLs use the exact model; other MPLs fall back
// to the nearest trained MPL's QS model with the actual mix's CQI.
func (p *Predictor) batchLatency(primary int, concurrent []int) (float64, error) {
	stats, ok := p.inner.Know.Template(primary)
	if !ok {
		return 0, fmt.Errorf("contender: unknown template %d", primary)
	}
	if len(concurrent) == 0 {
		return stats.IsolatedLatency, nil
	}
	if l, err := p.PredictKnown(primary, concurrent); err == nil {
		return clampMin(l, stats.IsolatedLatency), nil
	}
	// Fall back to the nearest trained MPL.
	mpls := p.MPLs()
	if len(mpls) == 0 {
		return 0, fmt.Errorf("contender: predictor has no trained MPLs")
	}
	want := len(concurrent) + 1
	nearest := mpls[0]
	for _, m := range mpls {
		if absInt(m-want) < absInt(nearest-want) {
			nearest = m
		}
	}
	refs, _ := p.inner.References(nearest)
	qs, ok := refs.Model(primary)
	if !ok {
		return 0, fmt.Errorf("contender: no QS model for template %d", primary)
	}
	cont, ok := p.inner.Know.ContinuumFor(primary, nearest)
	if !ok {
		return 0, fmt.Errorf("contender: no continuum for template %d at MPL %d", primary, nearest)
	}
	r := p.inner.Know.CQI(primary, concurrent)
	return clampMin(cont.Latency(qs.Point(r)), stats.IsolatedLatency), nil
}

func clampMin(v, floor float64) float64 {
	if v < floor {
		return floor
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ScheduleBatch orders a batch with the given policy and returns the
// admission order, the per-job forecast, and the predicted makespan.
// With an observer installed on the predictor, each call emits a
// sched.policy span (Key = policy name) and a sched.forecast span.
func (p *Predictor) ScheduleBatch(batch []int, mpl int, policy SchedulePolicy) ([]int, []JobForecast, float64, error) {
	if len(batch) == 0 {
		return nil, nil, 0, fmt.Errorf("contender: empty batch")
	}
	o := p.inner.Observer()
	order, err := sched.Observed(policy, o).Order(batch, mpl, p.batchLatency)
	if err != nil {
		return nil, nil, 0, err
	}
	jobs, span, err := sched.ObservedForecast(o, order, mpl, p.batchLatency)
	if err != nil {
		return nil, nil, 0, err
	}
	return order, jobs, span, nil
}

// ForecastBatch predicts the completion timeline of a fixed admission
// order at the given MPL without reordering.
func (p *Predictor) ForecastBatch(order []int, mpl int) ([]JobForecast, float64, error) {
	return sched.ObservedForecast(p.inner.Observer(), order, mpl, p.batchLatency)
}

// RunBatch executes an admission order on the simulated host at the given
// MPL and returns the per-job results (in order) and the measured
// makespan — ground truth for schedule validation.
func (w *Workbench) RunBatch(order []int, mpl int) ([]QueryResult, float64, error) {
	specs := make([]sim.QuerySpec, len(order))
	for i, id := range order {
		s, ok := w.env.Workload.Spec(id)
		if !ok {
			return nil, 0, fmt.Errorf("contender: unknown template %d", id)
		}
		specs[i] = s
	}
	return w.env.Engine.RunBatch(specs, mpl)
}

// ComparePolicies runs every given policy on the same batch, both in
// forecast and on the simulator, and returns the outcomes sorted by
// measured makespan (best first).
func ComparePolicies(wb *Workbench, pred *Predictor, batch []int, mpl int, policies ...SchedulePolicy) ([]PolicyOutcome, error) {
	if len(policies) == 0 {
		policies = []SchedulePolicy{PolicyFIFO, PolicySJF, PolicyInteractionAware}
	}
	var out []PolicyOutcome
	for _, pol := range policies {
		order, _, forecast, err := pred.ScheduleBatch(batch, mpl, pol)
		if err != nil {
			return nil, fmt.Errorf("contender: policy %s: %w", pol.Name(), err)
		}
		_, measured, err := wb.RunBatch(order, mpl)
		if err != nil {
			return nil, err
		}
		out = append(out, PolicyOutcome{
			Policy:           pol.Name(),
			Order:            order,
			ForecastMakespan: forecast,
			MeasuredMakespan: measured,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MeasuredMakespan < out[j].MeasuredMakespan })
	return out, nil
}

// PolicyOutcome is one policy's result in ComparePolicies.
type PolicyOutcome struct {
	Policy           string
	Order            []int
	ForecastMakespan float64
	MeasuredMakespan float64
}
