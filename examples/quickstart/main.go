// Quickstart: train Contender on the bundled TPC-DS workload and predict
// the concurrent latency of a few query mixes, comparing each prediction
// against the simulated ground truth.
package main

import (
	"fmt"
	"log"

	"contender"
)

func main() {
	// Build the workbench: this profiles all 25 templates in isolation and
	// under the spoiler, and samples concurrent mixes — the paper's whole
	// training-data collection, in seconds.
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	mixes := [][]int{
		{71, 2},  // an I/O-bound query with the memory hog
		{26, 62}, // two light queries sharing I/O
		{22, 82}, // both scan the inventory fact table: positive interaction
	}
	fmt.Println("primary  mix        CQI     predicted   simulated   error")
	for _, mix := range mixes {
		primary, concurrent := mix[0], mix[1:]
		estimate, err := pred.PredictKnown(primary, concurrent)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := wb.Simulate(mix)
		if err != nil {
			log.Fatal(err)
		}
		relErr := 100 * abs(truth[0]-estimate) / truth[0]
		fmt.Printf("T%-6d  %-9s  %.3f  %8.1f s  %8.1f s  %5.1f%%\n",
			primary, fmt.Sprint(concurrent), pred.CQI(primary, concurrent), estimate, truth[0], relErr)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
