// Scheduler: use concurrent-query performance prediction to order a batch
// of analytical queries — the paper's motivating application ("system
// administrators [could] make better scheduling decisions for large query
// batches, reducing the completion time of individual queries and that of
// the entire batch").
//
// A 10-query batch executes at MPL 2 under three admission policies:
// FIFO (submission order), shortest-job-first, and Contender's
// interaction-aware ordering (local search over forecast makespans built
// from concurrent-latency predictions). Each schedule is validated on the
// simulated host; the forecast makespans show how closely the
// prediction-driven timeline tracks reality.
package main

import (
	"fmt"
	"log"

	"contender"
)

func main() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	// The batch to schedule: I/O-bound, memory-heavy, and light queries in
	// an unfortunate submission order.
	batch := []int{71, 33, 2, 22, 26, 61, 62, 82, 65, 90}
	const mpl = 2
	fmt.Printf("batch: %v at MPL %d\n\n", batch, mpl)

	outcomes, err := contender.ComparePolicies(wb, pred, batch, mpl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s  %9s  %9s  %s\n", "policy", "forecast", "measured", "order")
	var fifo, best float64
	for _, o := range outcomes {
		fmt.Printf("%-18s  %8.0fs  %8.0fs  %v\n",
			o.Policy, o.ForecastMakespan, o.MeasuredMakespan, o.Order)
		if o.Policy == "FIFO" {
			fifo = o.MeasuredMakespan
		}
		if best == 0 || o.MeasuredMakespan < best {
			best = o.MeasuredMakespan
		}
	}
	fmt.Printf("\nbest schedule saves %.1f%% of the FIFO makespan\n", 100*(fifo-best)/fifo)
}
