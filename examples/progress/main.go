// Progress: a concurrency-aware query progress indicator — one of the
// paper's motivating applications. A long-running query (TPC-DS Q71)
// executes while the concurrent mix around it changes; the indicator
// integrates predicted progress rates over the observed timeline and
// revises its ETA whenever the resource picture changes.
package main

import (
	"fmt"
	"log"

	"contender"
)

func main() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	const query = 71
	stats, _ := wb.Template(query)
	fmt.Printf("tracking T%d (isolated latency %.0f s)\n\n", query, stats.IsolatedLatency)

	tracker, err := pred.TrackProgress(query)
	if err != nil {
		log.Fatal(err)
	}

	// The observed timeline: the DBA's console samples every 120 s; the
	// mix changes twice while our query runs.
	timeline := []struct {
		dt  float64
		mix []int
		why string
	}{
		{120, []int{2}, "memory-heavy Q2 running alongside"},
		{120, []int{2}, ""},
		{120, []int{2, 22}, "Q22 arrives — three-way contention"},
		{120, []int{2, 22}, ""},
		{120, []int{62}, "both heavyweights finish; light Q62 remains"},
		{120, []int{62}, ""},
		{120, nil, "system idle — query runs alone"},
	}

	fmt.Printf("%8s  %-14s  %9s  %9s  %s\n", "elapsed", "mix", "progress", "ETA", "event")
	for _, step := range timeline {
		if tracker.Done() {
			break
		}
		if _, err := tracker.Advance(step.dt, step.mix); err != nil {
			log.Fatal(err)
		}
		remaining, err := tracker.Remaining(step.mix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0fs  %-14s  %8.1f%%  %8.0fs  %s\n",
			tracker.Elapsed(), fmt.Sprint(step.mix), 100*tracker.Fraction(), remaining, step.why)
	}

	// A naive indicator that ignores concurrency would divide elapsed time
	// by the isolated latency — wildly optimistic under contention.
	naive := tracker.Elapsed() / stats.IsolatedLatency
	fmt.Printf("\nconcurrency-aware progress: %.1f%%   naive (isolated-only) estimate: %.1f%%\n",
		100*tracker.Fraction(), 100*naive)
}
