// Provisioning: use CQPP for cloud resource planning — "cloud-based
// database applications would be able to make more informed resource
// provisioning and query-to-server assignment plans" (Section 1).
//
// A tenant submits a recurring workload of six templates with a per-query
// latency SLO expressed as a slowdown factor over isolated execution. The
// planner uses Contender to find (a) the highest multiprogramming level at
// which the whole workload still meets the SLO on one server, and (b) a
// two-server assignment that minimizes predicted SLO violations, validating
// the chosen plan against the simulator.
package main

import (
	"fmt"
	"log"

	"contender"
)

const sloSlowdown = 2.5 // each query may run at most 2.5x its isolated latency

func main() {
	wb, err := contender.NewWorkbench(
		contender.WithMPLs(2, 3),
		contender.WithLHSRuns(2),
		contender.WithSteadySamples(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	workload := []int{71, 26, 62, 2, 61, 33}
	fmt.Printf("tenant workload: %v, SLO: ≤%.1fx isolated latency\n\n", workload, sloSlowdown)

	// (a) Highest safe MPL on a single server: at MPL k, each query runs
	// with k-1 others drawn from the workload; check the worst pairing.
	for _, mpl := range []int{2, 3} {
		worst := worstPredictedSlowdown(wb, pred, workload, mpl)
		verdict := "meets SLO"
		if worst > sloSlowdown {
			verdict = "VIOLATES SLO"
		}
		fmt.Printf("single server @ MPL %d: worst predicted slowdown %.2fx — %s\n", mpl, worst, verdict)
	}

	// (b) Two-server split at MPL 3: greedy assignment by predicted
	// slowdown. Compare against a naive round-robin split.
	naiveA, naiveB := workload[0:3], workload[3:6]
	smartA, smartB := splitByPrediction(wb, pred, workload)

	fmt.Printf("\ntwo-server assignment (each server runs its 3 queries together):\n")
	for _, plan := range []struct {
		name string
		a, b []int
	}{
		{"round-robin", naiveA, naiveB},
		{"CQPP-aware ", smartA, smartB},
	} {
		sa, err := measuredWorstSlowdown(wb, plan.a)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := measuredWorstSlowdown(wb, plan.b)
		if err != nil {
			log.Fatal(err)
		}
		worst := sa
		if sb > worst {
			worst = sb
		}
		fmt.Printf("  %s  server1=%v server2=%v  measured worst slowdown %.2fx\n",
			plan.name, plan.a, plan.b, worst)
	}
}

// worstPredictedSlowdown predicts each workload query's latency when run
// with its worst-case companions from the workload at the given MPL and
// returns the maximum slowdown.
func worstPredictedSlowdown(wb *contender.Workbench, pred *contender.Predictor, workload []int, mpl int) float64 {
	worst := 0.0
	for _, q := range workload {
		iso, _ := wb.Template(q)
		for _, mix := range companionMixes(workload, q, mpl-1) {
			l, err := pred.PredictKnown(q, mix)
			if err != nil {
				continue
			}
			if s := l / iso.IsolatedLatency; s > worst {
				worst = s
			}
		}
	}
	return worst
}

// companionMixes enumerates all size-k companion sets for q drawn from the
// workload (with replacement, excluding trivial repeats beyond pairs).
func companionMixes(workload []int, q, k int) [][]int {
	if k == 1 {
		var out [][]int
		for _, c := range workload {
			out = append(out, []int{c})
		}
		return out
	}
	var out [][]int
	for i, a := range workload {
		for _, b := range workload[i:] {
			out = append(out, []int{a, b})
		}
	}
	_ = q
	return out
}

// splitByPrediction exhaustively evaluates every balanced two-server split
// (C(6,3) = 20 configurations) and picks the one with the lowest predicted
// worst-case slowdown — cheap, because predictions cost microseconds while
// measuring a single configuration costs a full steady-state run.
func splitByPrediction(wb *contender.Workbench, pred *contender.Predictor, workload []int) (a, b []int) {
	n := len(workload)
	best := 1e18
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != n/2 {
			continue
		}
		var sa, sb []int
		for i, q := range workload {
			if mask&(1<<i) != 0 {
				sa = append(sa, q)
			} else {
				sb = append(sb, q)
			}
		}
		cost := predictedWorst(wb, pred, sa)
		if c := predictedWorst(wb, pred, sb); c > cost {
			cost = c
		}
		if cost < best {
			best, a, b = cost, sa, sb
		}
	}
	return a, b
}

// predictedWorst returns the worst predicted slowdown among a server's
// queries when they all run together.
func predictedWorst(wb *contender.Workbench, pred *contender.Predictor, mix []int) float64 {
	worst := 1.0
	for i, q := range mix {
		others := make([]int, 0, len(mix)-1)
		others = append(others, mix[:i]...)
		others = append(others, mix[i+1:]...)
		iso, _ := wb.Template(q)
		l, err := pred.PredictKnown(q, others)
		if err != nil {
			return 1e18
		}
		if s := l / iso.IsolatedLatency; s > worst {
			worst = s
		}
	}
	return worst
}

func popcount(v int) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// measuredWorstSlowdown simulates the server's mix and returns the largest
// measured slowdown among its queries.
func measuredWorstSlowdown(wb *contender.Workbench, mix []int) (float64, error) {
	if len(mix) == 0 {
		return 1, nil
	}
	lat, err := wb.Simulate(mix)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for i, q := range mix {
		iso, _ := wb.Template(q)
		if s := lat[i] / iso.IsolatedLatency; s > worst {
			worst = s
		}
	}
	return worst, nil
}
