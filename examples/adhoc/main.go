// Adhoc: predict the concurrent latency of a brand-new query template with
// constant-time sampling — Contender's headline capability. The new
// template is defined as a query plan, executed exactly once in isolation
// (nothing else!), and its latency in a concurrent mix is predicted via the
// estimated QS model and the KNN spoiler predictor, then checked against
// the simulated ground truth.
package main

import (
	"fmt"
	"log"

	"contender"
)

func main() {
	wb, err := contender.NewWorkbench(contender.QuickSampling())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		log.Fatal(err)
	}

	// An ad-hoc analyst query the workload has never seen: store and
	// catalog sales joined through dates and items, aggregated by brand.
	// Plans can be written with the Go builders or parsed from the compact
	// notation, as here.
	plan, err := contender.ParsePlan(`
		Sort:4e6:100(
		  HashAggregate:4e6:100(
		    HashJoin:20e6:110(
		      Scan:item:2e4:294,
		      HashJoin:35e6:120(
		        Scan:date_dim:180:141,
		        HashJoin:45e6:90(
		          Scan:store_sales:4e6:60,
		          Scan:catalog_sales:3e6:60)))))`)
	if err != nil {
		log.Fatal(err)
	}

	// One isolated execution: the only sampling the new template gets.
	const adhocID = 999
	stats, err := wb.ProfileTemplate(adhocID, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad-hoc template: isolated %.1f s, %.0f%% I/O, working set %.2f GiB\n",
		stats.IsolatedLatency, 100*stats.IOFraction, stats.WorkingSetBytes/(1<<30))

	// Predict its worst case (spoiler) and its latency in two mixes, all
	// without any concurrent sampling of the new template.
	for _, mpl := range []int{2, 3} {
		sp, err := pred.PredictSpoiler(stats, mpl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted spoiler latency @ MPL %d: %.1f s\n", mpl, sp)
	}

	for _, concurrent := range [][]int{{71}, {2, 62}} {
		estimate, err := pred.PredictNew(stats, concurrent, contender.SpoilerKNN)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := wb.SimulateAdhoc(adhocID, plan, concurrent)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("with %-8v predicted %8.1f s   simulated %8.1f s   error %.1f%%\n",
			concurrent, estimate, truth, 100*abs(truth-estimate)/truth)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
